//! Prediction types: per-step candidates and final annotations.

use tu_ontology::TypeId;

/// Which pipeline step produced a score (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Step {
    /// Step 1: header matching (syntactic + semantic).
    Header,
    /// Step 2: value lookup (LFs, knowledge base, regexes).
    Lookup,
    /// Step 3: table-embedding model.
    Embedding,
}

impl Step {
    /// All steps in execution (latency) order.
    pub const ALL: [Step; 3] = [Step::Header, Step::Lookup, Step::Embedding];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Step::Header => "header",
            Step::Lookup => "lookup",
            Step::Embedding => "embedding",
        }
    }
}

/// One candidate type with a confidence from one step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Proposed semantic type.
    pub ty: TypeId,
    /// Step-local confidence in `[0, 1]`.
    pub confidence: f64,
}

/// Scores a single step assigned to a single column.
#[derive(Debug, Clone, Default)]
pub struct StepScores {
    /// Candidates, sorted descending by confidence.
    pub candidates: Vec<Candidate>,
}

impl StepScores {
    /// Build from unsorted candidates (sorts, deduplicates by max).
    #[must_use]
    pub fn from_candidates(mut cands: Vec<Candidate>) -> Self {
        // Deduplicate keeping the max confidence per type.
        cands.sort_by(|a, b| {
            a.ty.cmp(&b.ty)
                .then(b.confidence.partial_cmp(&a.confidence).expect("finite"))
        });
        cands.dedup_by_key(|c| c.ty);
        cands.sort_by(|a, b| {
            b.confidence
                .partial_cmp(&a.confidence)
                .expect("finite")
                .then(a.ty.cmp(&b.ty))
        });
        StepScores { candidates: cands }
    }

    /// Best candidate, if any.
    #[must_use]
    pub fn best(&self) -> Option<Candidate> {
        self.candidates.first().copied()
    }

    /// Best confidence or 0.
    #[must_use]
    pub fn best_confidence(&self) -> f64 {
        self.best().map_or(0.0, |c| c.confidence)
    }

    /// Confidence for a specific type (0 when absent).
    #[must_use]
    pub fn confidence_for(&self, ty: TypeId) -> f64 {
        self.candidates
            .iter()
            .find(|c| c.ty == ty)
            .map_or(0.0, |c| c.confidence)
    }
}

/// Final annotation of one column.
#[derive(Debug, Clone)]
pub struct ColumnAnnotation {
    /// Column index in the table.
    pub col_idx: usize,
    /// Aggregated top-k candidates, best first.
    pub top_k: Vec<Candidate>,
    /// Final decision after τ-thresholding: `TypeId::UNKNOWN` when the
    /// system abstains.
    pub predicted: TypeId,
    /// Confidence of the final decision.
    pub confidence: f64,
    /// Which steps actually ran for this column.
    pub steps_run: Vec<Step>,
    /// Per-step scores (parallel to `steps_run`).
    pub step_scores: Vec<StepScores>,
}

impl ColumnAnnotation {
    /// Did the system abstain on this column?
    #[must_use]
    pub fn abstained(&self) -> bool {
        self.predicted.is_unknown()
    }

    /// The step whose candidate confidence first met the cascade
    /// threshold, if any (used by the E6 cascade experiment).
    #[must_use]
    pub fn resolving_step(&self, cascade_threshold: f64) -> Option<Step> {
        for (step, scores) in self.steps_run.iter().zip(&self.step_scores) {
            if scores.best_confidence() >= cascade_threshold {
                return Some(*step);
            }
        }
        None
    }
}

/// Annotation of a whole table.
#[derive(Debug, Clone)]
pub struct TableAnnotation {
    /// One annotation per column, in column order.
    pub columns: Vec<ColumnAnnotation>,
    /// Wall-clock nanoseconds spent per step across the table.
    pub step_nanos: [u128; 3],
}

impl TableAnnotation {
    /// Predicted types in column order.
    #[must_use]
    pub fn predictions(&self) -> Vec<TypeId> {
        self.columns.iter().map(|c| c.predicted).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_scores_sort_and_dedup() {
        let s = StepScores::from_candidates(vec![
            Candidate {
                ty: TypeId(2),
                confidence: 0.5,
            },
            Candidate {
                ty: TypeId(1),
                confidence: 0.9,
            },
            Candidate {
                ty: TypeId(2),
                confidence: 0.7,
            },
        ]);
        assert_eq!(s.candidates.len(), 2);
        assert_eq!(s.best().unwrap().ty, TypeId(1));
        assert_eq!(s.confidence_for(TypeId(2)), 0.7);
        assert_eq!(s.confidence_for(TypeId(9)), 0.0);
        assert_eq!(StepScores::default().best_confidence(), 0.0);
    }

    #[test]
    fn resolving_step_detection() {
        let ann = ColumnAnnotation {
            col_idx: 0,
            top_k: vec![],
            predicted: TypeId(1),
            confidence: 0.9,
            steps_run: vec![Step::Header, Step::Lookup],
            step_scores: vec![
                StepScores::from_candidates(vec![Candidate {
                    ty: TypeId(1),
                    confidence: 0.3,
                }]),
                StepScores::from_candidates(vec![Candidate {
                    ty: TypeId(1),
                    confidence: 0.95,
                }]),
            ],
        };
        assert_eq!(ann.resolving_step(0.8), Some(Step::Lookup));
        assert_eq!(ann.resolving_step(0.99), None);
        assert!(!ann.abstained());
    }

    #[test]
    fn step_names() {
        assert_eq!(Step::ALL.len(), 3);
        assert_eq!(Step::Header.name(), "header");
        assert_eq!(Step::Embedding.name(), "embedding");
    }
}
