//! Prediction types: step identities, per-step candidates and timings,
//! and final annotations.

use tu_ontology::TypeId;

/// Identifies a cascade step (Figure 4).
///
/// The seed pipeline hardcoded a closed three-variant enum; the cascade
/// API is open, so a step is identified by a small integer id instead.
/// Ids `0..16` are reserved for built-in steps; user-defined steps
/// allocate ids through [`StepId::custom`]. The seed enum's variant
/// paths (`Step::Header`, `Step::Lookup`, `Step::Embedding`) remain
/// available as constants for source compatibility.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StepId(u16);

/// Source-compatibility alias for the seed's `Step` enum: `Step::Header`
/// et al. keep working as both expressions and match patterns.
pub type Step = StepId;

impl StepId {
    /// Built-in step 1: header matching (syntactic + semantic).
    pub const HEADER: StepId = StepId(0);
    /// Built-in step 2: value lookup (LFs, knowledge base, regexes).
    pub const LOOKUP: StepId = StepId(1);
    /// Built-in step 3: table-embedding model.
    pub const EMBEDDING: StepId = StepId(2);
    /// Built-in step 4: standalone regex bank (shape + range rules only).
    pub const REGEX_ONLY: StepId = StepId(3);

    /// Seed-enum variant spelling of [`StepId::HEADER`].
    #[allow(non_upper_case_globals)]
    pub const Header: StepId = StepId::HEADER;
    /// Seed-enum variant spelling of [`StepId::LOOKUP`].
    #[allow(non_upper_case_globals)]
    pub const Lookup: StepId = StepId::LOOKUP;
    /// Seed-enum variant spelling of [`StepId::EMBEDDING`].
    #[allow(non_upper_case_globals)]
    pub const Embedding: StepId = StepId::EMBEDDING;

    /// The three standard steps in execution (latency) order — the seed
    /// pipeline's `Step::ALL`.
    pub const ALL: [StepId; 3] = [StepId::HEADER, StepId::LOOKUP, StepId::EMBEDDING];

    /// First id available to user-defined steps.
    const FIRST_CUSTOM: u16 = 16;

    /// The id of the `n`-th user-defined step. Custom ids never collide
    /// with built-in ones.
    ///
    /// # Panics
    /// Panics when `n > u16::MAX - 16` (the id would wrap into the
    /// reserved built-in range).
    #[must_use]
    pub const fn custom(n: u16) -> StepId {
        assert!(
            n <= u16::MAX - StepId::FIRST_CUSTOM,
            "custom step index overflows the id space"
        );
        StepId(StepId::FIRST_CUSTOM + n)
    }

    /// Is this a user-defined (non-built-in) step id?
    #[must_use]
    pub const fn is_custom(self) -> bool {
        self.0 >= StepId::FIRST_CUSTOM
    }

    /// Raw id value (stable across runs; useful for telemetry keys).
    #[must_use]
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// Display name for built-in steps; `"custom"` for user-defined ids
    /// (a custom step's real name lives on its `AnnotationStep` impl and
    /// in the [`StepTiming`] records).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StepId::HEADER => "header",
            StepId::LOOKUP => "lookup",
            StepId::EMBEDDING => "embedding",
            StepId::REGEX_ONLY => "regex-only",
            _ => "custom",
        }
    }
}

impl std::fmt::Debug for StepId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            StepId::HEADER => write!(f, "Header"),
            StepId::LOOKUP => write!(f, "Lookup"),
            StepId::EMBEDDING => write!(f, "Embedding"),
            StepId::REGEX_ONLY => write!(f, "RegexOnly"),
            StepId(raw) => write!(f, "Custom({})", raw - StepId::FIRST_CUSTOM),
        }
    }
}

/// One candidate type with a confidence from one step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Proposed semantic type.
    pub ty: TypeId,
    /// Step-local confidence in `[0, 1]`.
    pub confidence: f64,
}

/// Scores a single step assigned to a single column.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepScores {
    /// Candidates, sorted descending by confidence.
    pub candidates: Vec<Candidate>,
}

impl StepScores {
    /// Build from unsorted candidates (sorts, deduplicates by max).
    #[must_use]
    pub fn from_candidates(mut cands: Vec<Candidate>) -> Self {
        // Deduplicate keeping the max confidence per type.
        cands.sort_by(|a, b| {
            a.ty.cmp(&b.ty)
                .then(b.confidence.partial_cmp(&a.confidence).expect("finite"))
        });
        cands.dedup_by_key(|c| c.ty);
        cands.sort_by(|a, b| {
            b.confidence
                .partial_cmp(&a.confidence)
                .expect("finite")
                .then(a.ty.cmp(&b.ty))
        });
        StepScores { candidates: cands }
    }

    /// Best candidate, if any (borrowed — the aggregation hot path calls
    /// this per column and must not clone).
    #[must_use]
    pub fn best(&self) -> Option<&Candidate> {
        self.candidates.first()
    }

    /// Best confidence or 0.
    #[must_use]
    pub fn best_confidence(&self) -> f64 {
        self.best().map_or(0.0, |c| c.confidence)
    }

    /// Confidence for a specific type (0 when absent).
    #[must_use]
    pub fn confidence_for(&self, ty: TypeId) -> f64 {
        self.candidates
            .iter()
            .find(|c| c.ty == ty)
            .map_or(0.0, |c| c.confidence)
    }
}

/// Wall-clock telemetry for one cascade step over one table.
///
/// The cascade reports one record per configured step, in execution
/// order — including steps that skipped every column (`columns == 0`),
/// so per-step dashboards see a stable schema.
#[derive(Debug, Clone)]
pub struct StepTiming {
    /// Which step this record measures.
    pub step: StepId,
    /// The step's display name (meaningful for custom steps, whose
    /// [`StepId::name`] is just `"custom"`).
    pub name: String,
    /// Wall-clock nanoseconds the step spent on this table, including
    /// per-column skip checks and cache traffic.
    pub nanos: u128,
    /// How many columns the step actually ran on — neither skipped nor
    /// served from the step cache. On a warm repeat crawl this drops
    /// toward zero for [`cacheable`] steps while `cache_hits` absorbs
    /// the difference; non-cacheable steps (e.g. the header step) keep
    /// re-running their frontier.
    ///
    /// [`cacheable`]: crate::step::AnnotationStep::cacheable
    pub columns: usize,
    /// Columns answered from the step cache instead of running the
    /// step (always 0 when no cache is configured).
    pub cache_hits: usize,
    /// Columns the cache was consulted for but had no entry (equals
    /// `columns` when a cache is configured and the step is
    /// [`cacheable`]; 0 otherwise — non-cacheable steps are never
    /// consulted, so they run with `cache_misses == 0`).
    ///
    /// [`cacheable`]: crate::step::AnnotationStep::cacheable
    pub cache_misses: usize,
    /// Results inserted into the step cache after running.
    pub cache_inserts: usize,
    /// How many [`run_batch`] invocations (chunks) the executor issued
    /// for this step's frontier: 0 when nothing ran, 1 on the
    /// sequential path, more when the frontier was chunked for
    /// column-parallel execution (see
    /// [`CascadeExecutor`](crate::executor::CascadeExecutor)).
    ///
    /// [`run_batch`]: crate::step::AnnotationStep::run_batch
    pub chunks: usize,
    /// Nanoseconds spent *inside* the step's [`run_batch`] calls,
    /// summed across chunks — a CPU-time proxy. On the column-parallel
    /// path this exceeds the step's share of the wall-clock [`nanos`],
    /// and the ratio `parallel_nanos / nanos` approximates the
    /// intra-table speedup; the cost-aware-ordering roadmap item keys
    /// off this field.
    ///
    /// [`run_batch`]: crate::step::AnnotationStep::run_batch
    /// [`nanos`]: StepTiming::nanos
    pub parallel_nanos: u128,
    /// Columns answered by reusing the *base crawl's* cached scores on
    /// a delta-aware recrawl — the column's content moved, but by less
    /// than the step's sensitivity threshold (see
    /// [`AnnotationRequest::with_base`](crate::request::AnnotationRequest::with_base)).
    /// Counted separately from [`cache_hits`](StepTiming::cache_hits),
    /// which remain exact-fingerprint hits; always 0 outside
    /// delta-aware requests and at sensitivity 0.
    pub delta_reused: usize,
}

/// Final annotation of one column.
#[derive(Debug, Clone)]
pub struct ColumnAnnotation {
    /// Column index in the table.
    pub col_idx: usize,
    /// Aggregated top-k candidates, best first.
    pub top_k: Vec<Candidate>,
    /// Final decision after τ-thresholding: `TypeId::UNKNOWN` when the
    /// system abstains.
    pub predicted: TypeId,
    /// Confidence of the final decision.
    pub confidence: f64,
    /// Which steps actually ran for this column.
    pub steps_run: Vec<StepId>,
    /// Per-step scores (parallel to `steps_run`).
    pub step_scores: Vec<StepScores>,
}

impl ColumnAnnotation {
    /// Did the system abstain on this column?
    #[must_use]
    pub fn abstained(&self) -> bool {
        self.predicted.is_unknown()
    }

    /// The step whose candidate confidence first met the cascade
    /// threshold, if any (used by the E6 cascade experiment).
    #[must_use]
    pub fn resolving_step(&self, cascade_threshold: f64) -> Option<StepId> {
        for (step, scores) in self.steps_run.iter().zip(&self.step_scores) {
            if scores.best_confidence() >= cascade_threshold {
                return Some(*step);
            }
        }
        None
    }
}

/// Annotation of a whole table.
#[derive(Debug, Clone)]
pub struct TableAnnotation {
    /// One annotation per column, in column order.
    pub columns: Vec<ColumnAnnotation>,
    /// Per-step wall-clock telemetry, one record per configured cascade
    /// step in execution order (replaces the seed's `[u128; 3]`).
    pub timings: Vec<StepTiming>,
}

impl TableAnnotation {
    /// Predicted types in column order.
    #[must_use]
    pub fn predictions(&self) -> Vec<TypeId> {
        self.columns.iter().map(|c| c.predicted).collect()
    }

    /// Total wall-clock nanoseconds recorded for a step (0 when the step
    /// is not in the cascade).
    #[must_use]
    pub fn nanos_for(&self, step: StepId) -> u128 {
        self.timings
            .iter()
            .filter(|t| t.step == step)
            .map(|t| t.nanos)
            .sum()
    }

    /// Total wall-clock nanoseconds across every step record — the
    /// number to compare against a request budget's
    /// [`spent_nanos`](crate::request::DegradationReport::spent_nanos)
    /// (which charges the larger of wall-clock and summed in-chunk
    /// time per step, so it is ≥ the per-step wall clock whenever
    /// column parallelism engaged).
    #[must_use]
    pub fn total_nanos(&self) -> u128 {
        self.timings.iter().map(|t| t.nanos).sum()
    }

    /// How many columns abstained (predicted
    /// [`TypeId::UNKNOWN`](tu_ontology::TypeId::UNKNOWN)) — under a
    /// degraded outcome this is the headline quality cost of the
    /// budget.
    #[must_use]
    pub fn abstained_columns(&self) -> usize {
        self.columns.iter().filter(|c| c.abstained()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_scores_sort_and_dedup() {
        let s = StepScores::from_candidates(vec![
            Candidate {
                ty: TypeId(2),
                confidence: 0.5,
            },
            Candidate {
                ty: TypeId(1),
                confidence: 0.9,
            },
            Candidate {
                ty: TypeId(2),
                confidence: 0.7,
            },
        ]);
        assert_eq!(s.candidates.len(), 2);
        assert_eq!(s.best().unwrap().ty, TypeId(1));
        assert_eq!(s.confidence_for(TypeId(2)), 0.7);
        assert_eq!(s.confidence_for(TypeId(9)), 0.0);
        assert_eq!(StepScores::default().best_confidence(), 0.0);
    }

    #[test]
    fn resolving_step_detection() {
        let ann = ColumnAnnotation {
            col_idx: 0,
            top_k: vec![],
            predicted: TypeId(1),
            confidence: 0.9,
            steps_run: vec![Step::Header, Step::Lookup],
            step_scores: vec![
                StepScores::from_candidates(vec![Candidate {
                    ty: TypeId(1),
                    confidence: 0.3,
                }]),
                StepScores::from_candidates(vec![Candidate {
                    ty: TypeId(1),
                    confidence: 0.95,
                }]),
            ],
        };
        assert_eq!(ann.resolving_step(0.8), Some(Step::Lookup));
        assert_eq!(ann.resolving_step(0.99), None);
        assert!(!ann.abstained());
    }

    #[test]
    fn step_names() {
        assert_eq!(Step::ALL.len(), 3);
        assert_eq!(Step::Header.name(), "header");
        assert_eq!(Step::Embedding.name(), "embedding");
        assert_eq!(StepId::REGEX_ONLY.name(), "regex-only");
        assert_eq!(StepId::custom(2).name(), "custom");
    }

    #[test]
    fn seed_enum_constants_alias_builtin_ids() {
        assert_eq!(Step::Header, StepId::HEADER);
        assert_eq!(Step::Lookup, StepId::LOOKUP);
        assert_eq!(Step::Embedding, StepId::EMBEDDING);
        // Constants still work as match patterns (structural equality).
        let resolved = Some(StepId::LOOKUP);
        let label = match resolved {
            Some(Step::Header) => "h",
            Some(Step::Lookup) => "l",
            _ => "other",
        };
        assert_eq!(label, "l");
    }

    #[test]
    fn custom_ids_never_collide_with_builtins() {
        for n in 0..8 {
            let id = StepId::custom(n);
            assert!(id.is_custom());
            assert!(!Step::ALL.contains(&id));
            assert_ne!(id, StepId::REGEX_ONLY);
        }
        assert_eq!(StepId::custom(0), StepId::custom(0));
        assert_ne!(StepId::custom(0), StepId::custom(1));
        assert!(!StepId::HEADER.is_custom());
        assert_eq!(format!("{:?}", StepId::custom(3)), "Custom(3)");
        assert_eq!(format!("{:?}", StepId::HEADER), "Header");
    }

    fn timing(step: StepId, name: &str, nanos: u128) -> StepTiming {
        StepTiming {
            step,
            name: name.into(),
            nanos,
            columns: 1,
            cache_hits: 0,
            cache_misses: 0,
            cache_inserts: 0,
            chunks: 1,
            parallel_nanos: nanos,
            delta_reused: 0,
        }
    }

    #[test]
    fn nanos_for_sums_matching_steps() {
        let ann = TableAnnotation {
            columns: vec![],
            timings: vec![
                timing(StepId::HEADER, "header", 10),
                timing(StepId::LOOKUP, "lookup", 25),
            ],
        };
        assert_eq!(ann.nanos_for(StepId::HEADER), 10);
        assert_eq!(ann.nanos_for(StepId::LOOKUP), 25);
        assert_eq!(ann.nanos_for(StepId::EMBEDDING), 0);
        assert_eq!(ann.total_nanos(), 35);
        assert_eq!(ann.abstained_columns(), 0);
        assert!(ann.predictions().is_empty());
    }

    #[test]
    fn nanos_for_custom_registered_step_ids() {
        // A cascade mixing built-ins with user-registered steps: the
        // accessor must resolve custom ids exactly like built-in ones,
        // sum repeated records, and report 0 for unconfigured ids.
        let ann = TableAnnotation {
            columns: vec![],
            timings: vec![
                timing(StepId::HEADER, "header", 5),
                timing(StepId::custom(0), "ticket-prefix", 40),
                timing(StepId::custom(7), "geo-gazetteer", 11),
                timing(StepId::custom(0), "ticket-prefix", 2),
            ],
        };
        assert_eq!(ann.nanos_for(StepId::custom(0)), 42);
        assert_eq!(ann.nanos_for(StepId::custom(7)), 11);
        assert_eq!(ann.nanos_for(StepId::HEADER), 5);
        // Unconfigured ids — custom or built-in — report zero.
        assert_eq!(ann.nanos_for(StepId::custom(1)), 0);
        assert_eq!(ann.nanos_for(StepId::REGEX_ONLY), 0);
        // The raw id a custom timing reports round-trips through
        // telemetry keys.
        assert_eq!(StepId::custom(7).raw(), 16 + 7);
    }
}
