//! Multi-tenant traffic shaping: per-tenant spend accounting with
//! configurable fairness weights and a weighted deficit-style
//! scheduler (ROADMAP item 5c).
//!
//! The paper's deployment serves **many customers** from one shared
//! engine; nothing in PRs 5–9 stopped a single abusive tenant from
//! draining a whole lane window and starving everyone else. This
//! module adds the demand-side controls:
//!
//! * [`TenantRegistry`] — interns tenant names to cheap [`TenantId`]s
//!   and tracks, per tenant and per [`TrafficLane`], cumulative spend,
//!   serving counters, and a **deficit counter** in the style of
//!   weighted deficit round-robin: every lane window grants each
//!   tenant a quantum proportional to its fairness weight (with a
//!   bounded burst carryover), and every request charge drains it.
//! * [`TrafficShaper`] — the two [`LaneLedger`]s plus the registry,
//!   consulted by both the server's admission path and the
//!   [`AnnotationService`](crate::service::AnnotationService) batch
//!   scheduler. An **in-quota** tenant (deficit remaining) draws on
//!   the lane window like any request today, bounded by its deficit.
//!   An **over-quota** tenant is capped at its weight share of the
//!   lane's *unreserved* remainder — the remainder minus the deficits
//!   still owed to in-quota tenants — so heavy tenants degrade first
//!   while light tenants keep finding their entitlement in the
//!   window. Shedding order under queue pressure follows the same
//!   story: over-quota crawl traffic is refused at a quarter of queue
//!   capacity, in-quota crawl and over-quota interactive at half, and
//!   in-quota interactive only when the queue is genuinely full.
//!
//! Shaping changes **scheduling and shedding, never results**: a step
//! that runs computes exactly what it would have computed unshapen;
//! tighter caps only make degradation (which removes votes, never
//! fabricates) engage earlier for the tenants that earned it.

use crate::request::BudgetLedger;
use crate::service::{BoundedQueue, LaneLedger, QueueRejection, TrafficLane};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The tenant name assumed when a request does not identify itself
/// (e.g. no `x-sigma-tenant` header): all anonymous traffic shares one
/// account with weight [`DEFAULT_WEIGHT`].
pub const ANONYMOUS_TENANT: &str = "anonymous";

/// Fairness weight assigned to tenants interned without an explicit
/// [`TenantRegistry::register`] call.
pub const DEFAULT_WEIGHT: f64 = 1.0;

/// How many window quanta a tenant's deficit may accumulate: a briefly
/// idle tenant can burst up to this many windows' worth of entitlement
/// before the cap bites.
pub const BURST_WINDOWS: f64 = 2.0;

/// A registry-scoped tenant handle: a dense index into the
/// [`TenantRegistry`] that interned it. `Copy` so it rides inside
/// [`RequestOptions`](crate::request::RequestOptions) without
/// disturbing that struct's `Copy` contract. Ids are only meaningful
/// against the registry that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(u32);

impl TenantId {
    /// The dense registry slot this id names.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-lane accounting of one tenant.
#[derive(Debug, Default)]
struct TenantLaneAccount {
    /// Deficit-round-robin credit remaining in the current window
    /// regime (replenished by `quantum × weight-share` per window roll,
    /// capped at [`BURST_WINDOWS`] quanta, drained by charges).
    deficit_nanos: u64,
    /// Cumulative nanoseconds of step work charged to this tenant on
    /// this lane, across all windows. Monotone, for metrics.
    spent_nanos: u64,
    served: u64,
    shed: u64,
    degraded: u64,
}

#[derive(Debug)]
struct TenantAccount {
    name: String,
    weight: f64,
    lanes: [TenantLaneAccount; 2],
}

/// Per-lane shaping state: which [`LaneLedger`] window the registry
/// last replenished deficits for, and that window's budget.
#[derive(Debug, Default)]
struct LaneShapingState {
    /// `None` until the lane is first observed.
    last_seq: Option<u64>,
    window_budget: Option<u64>,
}

#[derive(Debug)]
struct RegistryInner {
    names: HashMap<String, u32>,
    accounts: Vec<TenantAccount>,
    lanes: [LaneShapingState; 2],
    total_weight: f64,
}

/// A point-in-time view of one tenant's per-lane accounting, for
/// metrics endpoints and load-lab reports.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantLaneSnapshot {
    /// Which lane the counters belong to.
    pub lane: TrafficLane,
    /// Cumulative charged step work.
    pub spent_nanos: u64,
    /// Deficit credit remaining.
    pub deficit_nanos: u64,
    /// Requests served (a batch counts once).
    pub served: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Outcomes that degraded (skipped or truncated steps).
    pub degraded: u64,
    /// Whether the tenant is currently over quota on this lane.
    pub over_quota: bool,
}

/// A point-in-time view of one tenant, for metrics and reports.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSnapshot {
    /// The tenant's registry handle.
    pub id: TenantId,
    /// The interned name.
    pub name: String,
    /// The fairness weight.
    pub weight: f64,
    /// Per-lane counters, in [`TrafficLane::ALL`] order.
    pub lanes: [TenantLaneSnapshot; 2],
}

/// Interns tenant names, holds fairness weights, and runs the
/// weighted deficit bookkeeping described in the [module docs](self).
///
/// With `fairness` disabled (see
/// [`accounting_only`](TenantRegistry::accounting_only)) the registry
/// still tracks per-tenant spend and counters — the load lab's
/// *unshapen baseline* — but never declares anyone over quota and
/// never caps a budget.
#[derive(Debug)]
pub struct TenantRegistry {
    inner: Mutex<RegistryInner>,
    burst_windows: f64,
    fairness: bool,
}

impl Default for TenantRegistry {
    fn default() -> Self {
        TenantRegistry::new()
    }
}

impl TenantRegistry {
    /// A registry with fairness shaping enabled and the default burst
    /// allowance.
    #[must_use]
    pub fn new() -> Self {
        TenantRegistry::with_fairness(true)
    }

    /// A registry that tracks spend and counters but never shapes:
    /// [`over_quota`](TenantRegistry::over_quota) is always `false`
    /// and [`effective_cap`](TenantRegistry::effective_cap) never
    /// tightens a budget. The load lab's unshapen baseline runs on
    /// this so its per-tenant report comes from the same bookkeeping.
    #[must_use]
    pub fn accounting_only() -> Self {
        TenantRegistry::with_fairness(false)
    }

    fn with_fairness(fairness: bool) -> Self {
        TenantRegistry {
            inner: Mutex::new(RegistryInner {
                names: HashMap::new(),
                accounts: Vec::new(),
                lanes: [LaneShapingState::default(), LaneShapingState::default()],
                total_weight: 0.0,
            }),
            burst_windows: BURST_WINDOWS,
            fairness,
        }
    }

    /// Whether fairness shaping is active (as opposed to
    /// accounting-only bookkeeping).
    #[must_use]
    pub fn fairness_enabled(&self) -> bool {
        self.fairness
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Intern `name`, creating the tenant with [`DEFAULT_WEIGHT`] on
    /// first sight. New tenants start with a full burst of deficit on
    /// every budgeted lane, so a newcomer is never over quota before
    /// it has spent anything.
    pub fn intern(&self, name: &str) -> TenantId {
        let mut inner = self.lock();
        if let Some(&idx) = inner.names.get(name) {
            return TenantId(idx);
        }
        self.insert_locked(&mut inner, name, DEFAULT_WEIGHT)
    }

    /// Intern `name` with an explicit fairness weight (clamped to a
    /// small positive minimum; weights are relative, not absolute).
    /// Re-registering an existing tenant updates its weight.
    pub fn register(&self, name: &str, weight: f64) -> TenantId {
        let weight = sanitize_weight(weight);
        let mut inner = self.lock();
        if let Some(&idx) = inner.names.get(name) {
            let old = inner.accounts[idx as usize].weight;
            inner.accounts[idx as usize].weight = weight;
            inner.total_weight += weight - old;
            return TenantId(idx);
        }
        self.insert_locked(&mut inner, name, weight)
    }

    fn insert_locked(&self, inner: &mut RegistryInner, name: &str, weight: f64) -> TenantId {
        let idx = u32::try_from(inner.accounts.len()).expect("tenant count fits u32");
        inner.names.insert(name.to_owned(), idx);
        inner.total_weight += weight;
        let mut account = TenantAccount {
            name: name.to_owned(),
            weight,
            lanes: [TenantLaneAccount::default(), TenantLaneAccount::default()],
        };
        // Full burst grant on every already-observed budgeted lane: a
        // tenant's first request must never be treated as over quota.
        let total = inner.total_weight;
        for lane in TrafficLane::ALL {
            if let Some(budget) = inner.lanes[lane_index(lane)].window_budget {
                let quantum = quantum_nanos(budget, weight, total);
                account.lanes[lane_index(lane)].deficit_nanos =
                    scale_nanos(quantum, self.burst_windows);
            }
        }
        inner.accounts.push(account);
        TenantId(idx)
    }

    /// Look up an already-interned tenant.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<TenantId> {
        self.lock().names.get(name).copied().map(TenantId)
    }

    /// The interned name of `id` (`None` for a foreign id).
    #[must_use]
    pub fn name(&self, id: TenantId) -> Option<String> {
        self.lock().accounts.get(id.index()).map(|a| a.name.clone())
    }

    /// The fairness weight of `id` (`None` for a foreign id).
    #[must_use]
    pub fn weight(&self, id: TenantId) -> Option<f64> {
        self.lock().accounts.get(id.index()).map(|a| a.weight)
    }

    /// Number of interned tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().accounts.len()
    }

    /// Whether no tenant has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sync the registry with a lane's live window: when the
    /// [`LaneLedger`] has rolled since the last observation (or its
    /// budget is seen for the first time), every tenant's deficit on
    /// that lane is replenished by one weight-share quantum per rolled
    /// window, capped at the burst allowance. Cheap no-op when the
    /// window is unchanged.
    pub fn observe_window(&self, lane: TrafficLane, seq: u64, window_budget: Option<u64>) {
        let mut inner = self.lock();
        let li = lane_index(lane);
        let state = &inner.lanes[li];
        let first = state.last_seq.is_none() || state.window_budget != window_budget;
        let rolled = state.last_seq.map_or(0, |last| seq.saturating_sub(last));
        if !first && rolled == 0 {
            return;
        }
        inner.lanes[li].last_seq = Some(seq);
        inner.lanes[li].window_budget = window_budget;
        let Some(budget) = window_budget else { return };
        // A first observation (or a budget change) grants the full
        // burst; later rolls add one quantum per elapsed window. The
        // cap makes the distinction soft: nobody can hoard more than
        // `burst_windows` quanta either way.
        let grants = if first {
            self.burst_windows
        } else {
            (rolled as f64).min(self.burst_windows)
        };
        let total = inner.total_weight;
        for account in &mut inner.accounts {
            let quantum = quantum_nanos(budget, account.weight, total);
            let cap = scale_nanos(quantum, self.burst_windows);
            let grant = scale_nanos(quantum, grants);
            let lane_acct = &mut account.lanes[li];
            lane_acct.deficit_nanos = lane_acct.deficit_nanos.saturating_add(grant).min(cap);
        }
    }

    /// Charge `nanos` of step work to `id` on `lane`: drains the
    /// deficit (saturating) and grows the cumulative spend.
    pub fn charge(&self, id: TenantId, lane: TrafficLane, nanos: u64) {
        let mut inner = self.lock();
        let Some(account) = inner.accounts.get_mut(id.index()) else {
            return;
        };
        let lane_acct = &mut account.lanes[lane_index(lane)];
        lane_acct.spent_nanos = lane_acct.spent_nanos.saturating_add(nanos);
        lane_acct.deficit_nanos = lane_acct.deficit_nanos.saturating_sub(nanos);
    }

    /// Is `id` over quota on `lane` — deficit fully drained on a
    /// budgeted lane? Always `false` with fairness disabled, on
    /// unbudgeted lanes, and for foreign ids.
    #[must_use]
    pub fn over_quota(&self, id: TenantId, lane: TrafficLane) -> bool {
        if !self.fairness {
            return false;
        }
        let inner = self.lock();
        if inner.lanes[lane_index(lane)].window_budget.is_none() {
            return false;
        }
        inner
            .accounts
            .get(id.index())
            .is_some_and(|a| a.lanes[lane_index(lane)].deficit_nanos == 0)
    }

    /// The per-request budget cap shaping imposes on `id` given the
    /// lane window's remainder — `None` means *no cap* (share the lane
    /// ledger exactly as an unshapen request would):
    ///
    /// * unbudgeted lane, fairness disabled, or foreign id → no cap;
    /// * **in quota** (deficit left) → capped at the deficit, but only
    ///   when the deficit is actually tighter than the lane remainder;
    /// * **over quota** → weight share of the lane remainder *minus*
    ///   the deficits still owed to in-quota tenants (their
    ///   reservation), which can be 0: the request runs fully
    ///   degraded and cheap instead of eating reserved budget.
    #[must_use]
    pub fn effective_cap(
        &self,
        id: TenantId,
        lane: TrafficLane,
        lane_remaining: Option<u64>,
    ) -> Option<u64> {
        if !self.fairness {
            return None;
        }
        let remaining = lane_remaining?;
        let inner = self.lock();
        let li = lane_index(lane);
        inner.lanes[li].window_budget?;
        let account = inner.accounts.get(id.index())?;
        let deficit = account.lanes[li].deficit_nanos;
        if deficit > 0 {
            if deficit >= remaining {
                // The lane window is the tighter bound: behave exactly
                // like an unshapen request.
                return None;
            }
            return Some(deficit);
        }
        // Over quota: leave the in-quota tenants' outstanding deficits
        // alone and take only a weight share of what is left over.
        let reserved: u64 = inner
            .accounts
            .iter()
            .enumerate()
            .filter(|(i, a)| *i != id.index() && a.lanes[li].deficit_nanos > 0)
            .map(|(_, a)| a.lanes[li].deficit_nanos)
            .fold(0u64, u64::saturating_add);
        let unreserved = remaining.saturating_sub(reserved);
        let share = if inner.total_weight > 0.0 {
            account.weight / inner.total_weight
        } else {
            0.0
        };
        Some(scale_nanos(unreserved, share))
    }

    /// Count one served request for `id` on `lane`, plus how many of
    /// its outcomes degraded.
    pub fn record_served(&self, id: TenantId, lane: TrafficLane, degraded_outcomes: u64) {
        let mut inner = self.lock();
        if let Some(account) = inner.accounts.get_mut(id.index()) {
            let lane_acct = &mut account.lanes[lane_index(lane)];
            lane_acct.served += 1;
            lane_acct.degraded += degraded_outcomes;
        }
    }

    /// Count one shed (refused at admission) request for `id` on
    /// `lane`.
    pub fn record_shed(&self, id: TenantId, lane: TrafficLane) {
        let mut inner = self.lock();
        if let Some(account) = inner.accounts.get_mut(id.index()) {
            account.lanes[lane_index(lane)].shed += 1;
        }
    }

    /// Point-in-time snapshots of every tenant, in intern order — the
    /// `/metrics` and load-lab reporting surface.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TenantSnapshot> {
        let inner = self.lock();
        inner
            .accounts
            .iter()
            .enumerate()
            .map(|(idx, account)| TenantSnapshot {
                id: TenantId(idx as u32),
                name: account.name.clone(),
                weight: account.weight,
                lanes: TrafficLane::ALL.map(|lane| {
                    let li = lane_index(lane);
                    let a = &account.lanes[li];
                    TenantLaneSnapshot {
                        lane,
                        spent_nanos: a.spent_nanos,
                        deficit_nanos: a.deficit_nanos,
                        served: a.served,
                        shed: a.shed,
                        degraded: a.degraded,
                        over_quota: self.fairness
                            && inner.lanes[li].window_budget.is_some()
                            && a.deficit_nanos == 0,
                    }
                }),
            })
            .collect()
    }
}

/// The admission cutoff for a request class, as a fraction of queue
/// capacity: the request is shed once the queue is at least this full.
/// Encodes the degradation order — *crawl before interactive, heavy
/// tenants before light ones*:
///
/// | lane        | over quota | cutoff |
/// |-------------|------------|--------|
/// | crawl       | yes        | 0.25   |
/// | crawl       | no         | 0.5    |
/// | interactive | yes        | 0.5    |
/// | interactive | no         | 1.0    |
#[must_use]
pub fn admission_cutoff(lane: TrafficLane, over_quota: bool) -> f64 {
    match (lane, over_quota) {
        (TrafficLane::Crawl, true) => 0.25,
        (TrafficLane::Crawl, false) | (TrafficLane::Interactive, true) => 0.5,
        (TrafficLane::Interactive, false) => 1.0,
    }
}

/// Per-lane serving counters, shared by the HTTP server and the load
/// lab's in-process driver. `served`/`shed` count *requests* (a batch
/// is one request); together they account for every arrival.
#[derive(Debug, Default)]
pub struct LaneCounters {
    served: AtomicU64,
    shed: AtomicU64,
    degraded: AtomicU64,
    delta_reused: AtomicU64,
}

impl LaneCounters {
    /// Count one served request with `degraded` degraded outcomes and
    /// `delta_reused` base-crawl reuses among them.
    pub fn record_served(&self, degraded: u64, delta_reused: u64) {
        self.served.fetch_add(1, Ordering::Relaxed);
        self.degraded.fetch_add(degraded, Ordering::Relaxed);
        self.delta_reused.fetch_add(delta_reused, Ordering::Relaxed);
    }

    /// Count one request shed at admission.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests served.
    #[must_use]
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Requests shed.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Outcomes that degraded.
    #[must_use]
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// `(step, column)` pairs answered from base-crawl cache entries.
    #[must_use]
    pub fn delta_reused(&self) -> u64 {
        self.delta_reused.load(Ordering::Relaxed)
    }
}

/// How one shaped request should source its budget (see
/// [`TrafficShaper::request_budget`]).
#[derive(Debug)]
pub enum ShapedBudget {
    /// Charge the lane's shared window ledger directly — the unshapen
    /// path: concurrent lane traffic collectively drains one budget.
    Shared(Arc<BudgetLedger>),
    /// Run under a private ledger of `cap_nanos` and charge the spend
    /// back to `lane` afterwards (via
    /// [`TrafficShaper::settle`]) — the path of explicit request
    /// budgets and of tenant caps.
    Local {
        /// The request's private allowance.
        cap_nanos: u64,
        /// The lane window ledger to charge the spend back to.
        lane: Arc<BudgetLedger>,
    },
}

/// The two lane ledgers, their serving counters, and the tenant
/// registry — one shaping decision surface consulted by the HTTP
/// server's admission/serve path and the load lab's in-process driver,
/// so both enforce byte-for-byte the same policy.
#[derive(Debug)]
pub struct TrafficShaper {
    lanes: [ShapedLane; 2],
    registry: Arc<TenantRegistry>,
}

#[derive(Debug)]
struct ShapedLane {
    ledger: LaneLedger,
    counters: LaneCounters,
}

impl TrafficShaper {
    /// A shaper over `registry` with the given per-lane window budgets
    /// (`None` = unbudgeted) and window length.
    #[must_use]
    pub fn new(
        registry: Arc<TenantRegistry>,
        interactive_budget_nanos: Option<u64>,
        crawl_budget_nanos: Option<u64>,
        window: Duration,
    ) -> Self {
        TrafficShaper {
            lanes: [
                ShapedLane {
                    ledger: LaneLedger::new(
                        TrafficLane::Interactive,
                        interactive_budget_nanos,
                        window,
                    ),
                    counters: LaneCounters::default(),
                },
                ShapedLane {
                    ledger: LaneLedger::new(TrafficLane::Crawl, crawl_budget_nanos, window),
                    counters: LaneCounters::default(),
                },
            ],
            registry,
        }
    }

    /// The tenant registry behind this shaper.
    #[must_use]
    pub fn registry(&self) -> &Arc<TenantRegistry> {
        &self.registry
    }

    /// The window ledger of `lane`.
    #[must_use]
    pub fn lane_ledger(&self, lane: TrafficLane) -> &LaneLedger {
        &self.lanes[lane_index(lane)].ledger
    }

    /// The serving counters of `lane`.
    #[must_use]
    pub fn counters(&self, lane: TrafficLane) -> &LaneCounters {
        &self.lanes[lane_index(lane)].counters
    }

    /// Sync the registry's deficits with `lane`'s live window and
    /// return that window's shared ledger.
    fn synced_ledger(&self, lane: TrafficLane) -> Arc<BudgetLedger> {
        let lane_state = &self.lanes[lane_index(lane)];
        let (ledger, seq) = lane_state.ledger.ledger_with_seq();
        self.registry
            .observe_window(lane, seq, lane_state.ledger.window_budget());
        ledger
    }

    /// Is `tenant` currently over quota on `lane` (deficits synced to
    /// the live window first)?
    #[must_use]
    pub fn over_quota(&self, lane: TrafficLane, tenant: TenantId) -> bool {
        let _ = self.synced_ledger(lane);
        self.registry.over_quota(tenant, lane)
    }

    /// Lane- and tenant-aware admission: shed once the queue is at
    /// least [`admission_cutoff`] full for this request class (the
    /// push itself backstops genuinely-full and closed queues). A shed
    /// is counted against the lane and the tenant; an admitted job is
    /// not counted until served.
    pub fn admit<T>(
        &self,
        queue: &BoundedQueue<T>,
        lane: TrafficLane,
        tenant: TenantId,
        job: T,
    ) -> Result<(), QueueRejection> {
        let cutoff = admission_cutoff(lane, self.over_quota(lane, tenant));
        let threshold = scale_capacity(queue.capacity(), cutoff);
        let result = if cutoff < 1.0 && queue.len() >= threshold {
            Err(QueueRejection::Full)
        } else {
            queue.push(job).map_err(|(_, why)| why)
        };
        if result.is_err() {
            self.counters(lane).record_shed();
            self.registry.record_shed(tenant, lane);
        }
        result
    }

    /// Resolve how a request from `tenant` on `lane` with an optional
    /// explicit budget should source its allowance. The decision
    /// composes three bounds — lane window remainder, tenant shaping
    /// cap, explicit request budget — and preserves the unshapen
    /// contract exactly when shaping imposes nothing: an unbudgeted
    /// request on an uncapped tenant shares the lane window ledger.
    #[must_use]
    pub fn request_budget(
        &self,
        lane: TrafficLane,
        tenant: TenantId,
        request_budget: Option<u64>,
    ) -> ShapedBudget {
        let lane_ledger = self.synced_ledger(lane);
        let tenant_cap = self
            .registry
            .effective_cap(tenant, lane, lane_ledger.remaining());
        match (request_budget, tenant_cap) {
            (None, None) => ShapedBudget::Shared(lane_ledger),
            (request, cap) => {
                let lane_left = lane_ledger.remaining().unwrap_or(u64::MAX);
                let bound = request
                    .unwrap_or(u64::MAX)
                    .min(cap.unwrap_or(u64::MAX))
                    .min(lane_left);
                ShapedBudget::Local {
                    cap_nanos: bound,
                    lane: lane_ledger,
                }
            }
        }
    }

    /// Account one served request: charge `spent_nanos` back to the
    /// lane window (only for [`ShapedBudget::Local`] runs — shared
    /// runs charged the window ledger directly), charge the tenant's
    /// deficit and spend, and bump the lane/tenant serving counters.
    pub fn settle(
        &self,
        lane: TrafficLane,
        tenant: TenantId,
        budget: &ShapedBudget,
        spent_nanos: u64,
        degraded_outcomes: u64,
        delta_reused: u64,
    ) {
        if let ShapedBudget::Local { lane: ledger, .. } = budget {
            ledger.charge(spent_nanos);
        }
        self.registry.charge(tenant, lane, spent_nanos);
        self.registry.record_served(tenant, lane, degraded_outcomes);
        self.counters(lane)
            .record_served(degraded_outcomes, delta_reused);
    }
}

/// Dense index of a lane into per-lane arrays ([`TrafficLane::ALL`]
/// order).
#[must_use]
pub fn lane_index(lane: TrafficLane) -> usize {
    match lane {
        TrafficLane::Interactive => 0,
        TrafficLane::Crawl => 1,
    }
}

fn sanitize_weight(weight: f64) -> f64 {
    if weight.is_finite() {
        weight.max(1e-6)
    } else {
        DEFAULT_WEIGHT
    }
}

fn quantum_nanos(window_budget: u64, weight: f64, total_weight: f64) -> u64 {
    if total_weight <= 0.0 {
        return window_budget;
    }
    scale_nanos(window_budget, weight / total_weight)
}

/// `nanos × factor`, saturating, with non-finite factors clamped away.
fn scale_nanos(nanos: u64, factor: f64) -> u64 {
    let scaled = nanos as f64 * factor.max(0.0);
    if !scaled.is_finite() || scaled >= u64::MAX as f64 {
        u64::MAX
    } else {
        scaled as u64
    }
}

fn scale_capacity(capacity: usize, fraction: f64) -> usize {
    let scaled = capacity as f64 * fraction.clamp(0.0, 1.0);
    scaled.floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let reg = TenantRegistry::new();
        let a = reg.intern("acme");
        let b = reg.intern("beta");
        assert_eq!(reg.intern("acme"), a);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.name(a).as_deref(), Some("acme"));
        assert_eq!(reg.lookup("beta"), Some(b));
        assert_eq!(reg.lookup("gamma"), None);
        assert_eq!(reg.weight(a), Some(DEFAULT_WEIGHT));
    }

    #[test]
    fn register_sets_and_updates_weights() {
        let reg = TenantRegistry::new();
        let a = reg.register("acme", 3.0);
        assert_eq!(reg.weight(a), Some(3.0));
        let same = reg.register("acme", 5.0);
        assert_eq!(same, a);
        assert_eq!(reg.weight(a), Some(5.0));
        // Degenerate weights are clamped, never zero or negative.
        let b = reg.register("beta", -1.0);
        assert!(reg.weight(b).unwrap() > 0.0);
        let c = reg.register("gamma", f64::NAN);
        assert_eq!(reg.weight(c), Some(DEFAULT_WEIGHT));
    }

    #[test]
    fn deficits_replenish_per_window_and_cap_at_burst() {
        let reg = TenantRegistry::new();
        let a = reg.register("a", 1.0);
        let b = reg.register("b", 1.0);
        // First observation grants the full burst: budget 1000, two
        // equal tenants → quantum 500, burst cap 1000.
        reg.observe_window(TrafficLane::Interactive, 0, Some(1_000));
        assert!(!reg.over_quota(a, TrafficLane::Interactive));
        reg.charge(a, TrafficLane::Interactive, 1_000);
        assert!(reg.over_quota(a, TrafficLane::Interactive));
        assert!(!reg.over_quota(b, TrafficLane::Interactive));
        // Same window: no replenish.
        reg.observe_window(TrafficLane::Interactive, 0, Some(1_000));
        assert!(reg.over_quota(a, TrafficLane::Interactive));
        // Rolled window: one quantum back.
        reg.observe_window(TrafficLane::Interactive, 1, Some(1_000));
        assert!(!reg.over_quota(a, TrafficLane::Interactive));
        // b never spent: capped at the burst, not unbounded.
        let snap = reg.snapshot();
        let b_lane = &snap[b.index()].lanes[lane_index(TrafficLane::Interactive)];
        assert_eq!(b_lane.deficit_nanos, 1_000, "burst cap = 2 quanta");
    }

    #[test]
    fn over_quota_needs_fairness_and_a_budgeted_lane() {
        let reg = TenantRegistry::accounting_only();
        let a = reg.intern("a");
        reg.observe_window(TrafficLane::Crawl, 0, Some(100));
        reg.charge(a, TrafficLane::Crawl, 10_000);
        assert!(!reg.over_quota(a, TrafficLane::Crawl), "accounting only");
        assert_eq!(reg.effective_cap(a, TrafficLane::Crawl, Some(100)), None);

        let fair = TenantRegistry::new();
        let b = fair.intern("b");
        // Unbudgeted lane: never over quota, never capped.
        fair.observe_window(TrafficLane::Crawl, 0, None);
        fair.charge(b, TrafficLane::Crawl, 10_000);
        assert!(!fair.over_quota(b, TrafficLane::Crawl));
        assert_eq!(fair.effective_cap(b, TrafficLane::Crawl, None), None);
    }

    #[test]
    fn effective_cap_reserves_in_quota_deficits() {
        let reg = TenantRegistry::new();
        let heavy = reg.register("heavy", 1.0);
        let light = reg.register("light", 1.0);
        reg.observe_window(TrafficLane::Interactive, 0, Some(1_000));
        // In quota with deficit (1000 burst) ≥ remaining (1000): no cap
        // — indistinguishable from unshapen.
        assert_eq!(
            reg.effective_cap(heavy, TrafficLane::Interactive, Some(1_000)),
            None
        );
        // Drain heavy partially: deficit 300 < remaining 800 → capped
        // at the deficit.
        reg.charge(heavy, TrafficLane::Interactive, 700);
        assert_eq!(
            reg.effective_cap(heavy, TrafficLane::Interactive, Some(800)),
            Some(300)
        );
        // Fully drained: over quota. Light still holds a 1000 deficit
        // (reserved); remaining 800 − min(reserved, …) leaves nothing.
        reg.charge(heavy, TrafficLane::Interactive, 300);
        assert!(reg.over_quota(heavy, TrafficLane::Interactive));
        assert_eq!(
            reg.effective_cap(heavy, TrafficLane::Interactive, Some(800)),
            Some(0)
        );
        // With light mostly drained too, the unreserved remainder is
        // shared by weight: light deficit 100 reserved, remaining 800
        // → unreserved 700, heavy's half share = 350.
        reg.charge(light, TrafficLane::Interactive, 900);
        assert_eq!(
            reg.effective_cap(heavy, TrafficLane::Interactive, Some(800)),
            Some(350)
        );
    }

    #[test]
    fn admission_cutoffs_order_sheds() {
        assert!(
            admission_cutoff(TrafficLane::Crawl, true)
                < admission_cutoff(TrafficLane::Crawl, false)
        );
        assert!(
            admission_cutoff(TrafficLane::Crawl, false)
                < admission_cutoff(TrafficLane::Interactive, false)
        );
        assert_eq!(
            admission_cutoff(TrafficLane::Crawl, false),
            admission_cutoff(TrafficLane::Interactive, true)
        );
        assert_eq!(admission_cutoff(TrafficLane::Interactive, false), 1.0);
    }

    #[test]
    fn shaper_admission_consults_quota_and_counts_sheds() {
        let registry = Arc::new(TenantRegistry::new());
        let shaper = TrafficShaper::new(
            Arc::clone(&registry),
            Some(1_000),
            Some(1_000),
            Duration::from_secs(600),
        );
        let heavy = registry.register("heavy", 1.0);
        let light = registry.register("light", 1.0);
        let queue: BoundedQueue<u32> = BoundedQueue::new(8);
        // Fill to 2 (≥ 8×0.25): over-quota crawl sheds, in-quota crawl
        // still admitted.
        queue.push(0).unwrap();
        queue.push(1).unwrap();
        // Drain heavy's whole deficit so it goes over quota.
        let _ = shaper.synced_ledger(TrafficLane::Crawl);
        registry.charge(heavy, TrafficLane::Crawl, u64::MAX / 2);
        assert_eq!(
            shaper.admit(&queue, TrafficLane::Crawl, heavy, 2),
            Err(QueueRejection::Full)
        );
        assert_eq!(shaper.admit(&queue, TrafficLane::Crawl, light, 2), Ok(()));
        // At half capacity every crawl request sheds; interactive
        // in-quota still goes through.
        queue.push(3).unwrap();
        assert_eq!(
            shaper.admit(&queue, TrafficLane::Crawl, light, 4),
            Err(QueueRejection::Full)
        );
        // Quota is per lane: heavy drained only its crawl deficit, so
        // interactive still admits it...
        assert!(!shaper.over_quota(TrafficLane::Interactive, heavy));
        // ...until the interactive deficit is drained too.
        registry.charge(heavy, TrafficLane::Interactive, u64::MAX / 2);
        assert_eq!(
            shaper.admit(&queue, TrafficLane::Interactive, heavy, 4),
            Err(QueueRejection::Full),
            "over-quota interactive sheds at the crawl cutoff"
        );
        assert_eq!(
            shaper.admit(&queue, TrafficLane::Interactive, light, 4),
            Ok(())
        );
        assert_eq!(shaper.counters(TrafficLane::Crawl).shed(), 2);
        assert_eq!(shaper.counters(TrafficLane::Interactive).shed(), 1);
        let snap = registry.snapshot();
        assert_eq!(snap[heavy.index()].lanes[1].shed, 1);
        assert_eq!(snap[heavy.index()].lanes[0].shed, 1);
        assert_eq!(snap[light.index()].lanes[1].shed, 1);
    }

    #[test]
    fn request_budget_composes_lane_tenant_and_request_bounds() {
        let registry = Arc::new(TenantRegistry::new());
        let shaper = TrafficShaper::new(
            Arc::clone(&registry),
            Some(10_000),
            None,
            Duration::from_secs(600),
        );
        let t = registry.intern("t");
        // Unbudgeted request, in-quota tenant with burst ≥ window:
        // shares the lane ledger (the unshapen path).
        match shaper.request_budget(TrafficLane::Interactive, t, None) {
            ShapedBudget::Shared(ledger) => {
                assert_eq!(ledger.remaining(), Some(10_000));
            }
            other => panic!("expected shared lane ledger, got {other:?}"),
        }
        // Explicit request budget: local, capped at min(budget, lane).
        match shaper.request_budget(TrafficLane::Interactive, t, Some(3_000)) {
            ShapedBudget::Local { cap_nanos, .. } => assert_eq!(cap_nanos, 3_000),
            other => panic!("expected local ledger, got {other:?}"),
        }
        // Unbudgeted lane: explicit budget passes through verbatim.
        match shaper.request_budget(TrafficLane::Crawl, t, Some(42)) {
            ShapedBudget::Local { cap_nanos, .. } => assert_eq!(cap_nanos, 42),
            other => panic!("expected local ledger, got {other:?}"),
        }
        // Drained sole tenant: work conserving — with nobody else's
        // deficit to reserve, the over-quota share is the full lane
        // remainder, so the request budget still binds.
        registry.charge(t, TrafficLane::Interactive, u64::MAX / 2);
        match shaper.request_budget(TrafficLane::Interactive, t, Some(3_000)) {
            ShapedBudget::Local { cap_nanos, .. } => assert_eq!(cap_nanos, 3_000),
            other => panic!("expected local ledger, got {other:?}"),
        }
        // A second in-quota tenant changes that: its burst deficit
        // (2 quanta = the whole window) is reserved, so the drained
        // tenant's cap collapses to 0 — fully degraded, not starved of
        // admission.
        let _ = registry.register("other", 1.0);
        match shaper.request_budget(TrafficLane::Interactive, t, Some(3_000)) {
            ShapedBudget::Local { cap_nanos, .. } => assert_eq!(cap_nanos, 0),
            other => panic!("expected local ledger, got {other:?}"),
        }
    }

    #[test]
    fn settle_charges_lane_tenant_and_counters() {
        let registry = Arc::new(TenantRegistry::new());
        let shaper = TrafficShaper::new(
            Arc::clone(&registry),
            Some(10_000),
            None,
            Duration::from_secs(600),
        );
        let t = registry.intern("t");
        let grant = shaper.request_budget(TrafficLane::Interactive, t, Some(4_000));
        shaper.settle(TrafficLane::Interactive, t, &grant, 2_500, 1, 3);
        assert_eq!(
            shaper
                .lane_ledger(TrafficLane::Interactive)
                .remaining_nanos(),
            Some(7_500)
        );
        let snap = registry.snapshot();
        let lane0 = &snap[t.index()].lanes[0];
        assert_eq!(lane0.spent_nanos, 2_500);
        assert_eq!(lane0.served, 1);
        assert_eq!(lane0.degraded, 1);
        let counters = shaper.counters(TrafficLane::Interactive);
        assert_eq!(counters.served(), 1);
        assert_eq!(counters.degraded(), 1);
        assert_eq!(counters.delta_reused(), 3);
    }
}
