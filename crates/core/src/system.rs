//! The SigmaTyper orchestrator: cascade, aggregation, and adaptation.

use crate::aggregate::{apply_tau, soft_majority_vote_with};
use crate::backend::EmbeddingBackendKind;
use crate::cache::{
    column_fingerprints, column_fingerprints_chained, CacheContext, ColumnFingerprint,
    ColumnHashState, EpochSource, ShardedLruCache, StepCache,
};
use crate::cascade::Cascade;
use crate::config::SigmaTyperConfig;
use crate::cost::CostModel;
use crate::executor::{CascadeExecutor, DeltaContext, ParallelismPolicy};
use crate::global::GlobalModel;
use crate::local::LocalModel;
use crate::prediction::{Candidate, ColumnAnnotation, StepId, StepScores, TableAnnotation};
use crate::request::{
    AnnotationOutcome, AnnotationRequest, BudgetContext, BudgetLedger, DegradationReport,
    RequestOptions, TelemetryVerbosity,
};
use crate::step::AnnotationStep;
use std::sync::Arc;
use tu_corpus::Corpus;
use tu_dp::{infer_lfs, mine_weak_labels, Demonstration, InferConfig, MiningConfig};
use tu_ontology::{Category, Ontology, TypeId, ValueKind};
use tu_table::{Table, TableDelta};

/// One customer's SigmaTyper instance: the shared global model plus this
/// customer's local model (Figure 2's `Customer_i` box), annotating
/// through a configurable [`Cascade`] of [`AnnotationStep`]s.
#[derive(Debug, Clone)]
pub struct SigmaTyper {
    global: Arc<GlobalModel>,
    /// Customer-local ontology (may gain custom types).
    ontology: Ontology,
    local: LocalModel,
    config: SigmaTyperConfig,
    cascade: Cascade,
    /// Optional per-step result cache (see [`crate::cache`]). Shared
    /// by `Arc`, so clones of this instance — including the per-worker
    /// sharing inside [`AnnotationService`] — hit one store.
    ///
    /// [`AnnotationService`]: crate::service::AnnotationService
    cache: Option<Arc<dyn StepCache>>,
    /// Online per-step cost/yield telemetry (see [`crate::cost`]),
    /// fed by every annotation and shared by `Arc` across clones —
    /// the batch service's workers all report into one model.
    /// Observation-only: it never influences an annotation unless a
    /// request carries a degradation policy or the cascade is
    /// explicitly reordered through it.
    cost: Arc<CostModel>,
    /// Cache epoch: hashed into every column fingerprint and replaced
    /// by a fresh process-globally unique value on every adaptation
    /// event, so cached scores from before an adaptation can never be
    /// served after it. Global uniqueness (not a per-instance counter)
    /// is what makes *sharing one cache across instances* sound: two
    /// instances only ever hold the same epoch when one is an
    /// unmutated clone of the other — i.e. when their models really
    /// are identical. Any divergence (a feedback event on either side)
    /// draws a fresh value no other instance has ever used.
    epoch: u64,
    /// Optional durable epoch source (see
    /// [`EpochSource`]). When present, epochs are drawn from (and
    /// persisted through) the source instead of the in-process
    /// counter: a restarted process resumes its predecessor's epoch —
    /// keeping a persistent cache tier warm — and an adaptation here
    /// durably advances the source before the new epoch is used, so
    /// other processes sharing it stop reaching the stale entries.
    epoch_source: Option<Arc<dyn EpochSource>>,
}

/// Mix a process id and a nanosecond timestamp into an epoch seed:
/// `pid ⊕ splitmix(startup_nanos)`, masked to the low 63 bits so the
/// in-process counter keeps ~2⁶² of monotone headroom above any seed.
///
/// Pure and deterministic in its inputs so tests can simulate distinct
/// processes; real callers feed `std::process::id()` and wall-clock
/// nanos.
fn process_epoch_seed(pid: u32, startup_nanos: u64) -> u64 {
    (u64::from(pid) ^ crate::cache::avalanche(startup_nanos)) & (u64::MAX >> 1)
}

/// Draw a fresh, process-globally unique cache epoch (see
/// [`SigmaTyper::cache_epoch`]). Values are monotone within a process,
/// so tests can assert "the epoch moved" with `>`.
///
/// The counter starts from [`process_epoch_seed`] entropy, **not** 0:
/// with a zero seed every process would draw the same epoch sequence,
/// so the moment a cache outlives one process (an external backend, or
/// one process feeding entries another reads) two different model
/// states could share an epoch and serve each other stale scores.
/// Entropy makes cross-process epoch reuse a ~2⁻⁶³ event instead of a
/// certainty; configurations that need a hard guarantee (plus warm
/// restarts) install a durable
/// [`EpochSource`](crate::cache::EpochSource) instead.
fn next_epoch() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEED: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let seed = *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos() as u64);
        process_epoch_seed(std::process::id(), nanos)
    });
    seed.wrapping_add(NEXT.fetch_add(1, Ordering::Relaxed))
}

/// A fresh entropy epoch for out-of-process stores (used by
/// [`DurableEpochSource`](crate::diskcache::DurableEpochSource) when
/// seeding a new epoch file). Distinct from the [`next_epoch`] counter
/// space — a durable seed must not land on a value the in-process
/// counter is about to hand to some other instance — and salted per
/// call so two files seeded in the same nanosecond still differ.
pub(crate) fn entropy_epoch_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SALT: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    let salt = SALT.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
    process_epoch_seed(
        std::process::id(),
        nanos ^ crate::cache::avalanche(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
    )
}

/// Builder for a customer instance with a customized cascade: add,
/// remove, and reorder steps; override per-step vote weights; set the
/// cascade threshold and τ. `build()` with no customization yields
/// exactly the paper's three-step pipeline.
///
/// ```
/// use sigmatyper::{train_global, RegexOnlyStep, SigmaTyper, Step, StepId, TrainingConfig};
/// use tu_corpus::{generate_corpus, CorpusConfig};
/// use tu_ontology::builtin_ontology;
///
/// let ontology = builtin_ontology();
/// let corpus = generate_corpus(&ontology, &CorpusConfig::database_like(7, 8));
/// let global = std::sync::Arc::new(train_global(ontology, &corpus, &TrainingConfig::fast()));
/// let typer = SigmaTyper::builder(global)
///     .step_at(1, RegexOnlyStep) // run the bare regex bank right after header matching
///     .step_weight(StepId::REGEX_ONLY, 0.8)
///     .without_step(Step::Embedding)
///     .tau(0.5)
///     .build();
/// assert_eq!(
///     typer.cascade().step_ids(),
///     vec![Step::Header, StepId::REGEX_ONLY, Step::Lookup]
/// );
/// ```
#[derive(Debug, Clone)]
pub struct SigmaTyperBuilder {
    global: Arc<GlobalModel>,
    config: SigmaTyperConfig,
    cascade: Cascade,
    cache: Option<Arc<dyn StepCache>>,
    cost: Option<Arc<CostModel>>,
    epoch_source: Option<Arc<dyn EpochSource>>,
}

impl SigmaTyperBuilder {
    /// Replace the whole configuration (defaults to
    /// [`SigmaTyperConfig::default`]).
    #[must_use]
    pub fn config(mut self, config: SigmaTyperConfig) -> Self {
        self.config = config;
        self
    }

    /// Set the cascade confidence threshold `c`.
    #[must_use]
    pub fn cascade_threshold(mut self, c: f64) -> Self {
        self.config.cascade_threshold = c;
        self
    }

    /// Set the abstention threshold τ.
    #[must_use]
    pub fn tau(mut self, tau: f64) -> Self {
        self.config.tau = tau;
        self
    }

    /// Append a step at the end of the cascade.
    ///
    /// # Panics
    /// Panics when a step with the same id is already configured.
    #[must_use]
    pub fn step(mut self, step: impl AnnotationStep + 'static) -> Self {
        self.cascade.push(step);
        self
    }

    /// Insert a step at `index` (0 = runs first).
    ///
    /// # Panics
    /// Panics when `index` is out of range or the id is already
    /// configured.
    #[must_use]
    pub fn step_at(mut self, index: usize, step: impl AnnotationStep + 'static) -> Self {
        self.cascade.insert(index, step);
        self
    }

    /// Remove the step with this id (no-op when absent).
    #[must_use]
    pub fn without_step(mut self, id: StepId) -> Self {
        self.cascade.remove(id);
        self
    }

    /// Reorder the cascade: listed steps run first in the given order;
    /// unlisted steps follow in their current relative order.
    #[must_use]
    pub fn reorder(mut self, order: &[StepId]) -> Self {
        self.cascade.reorder(order);
        self
    }

    /// Override one step's vote weight (default: the config weight for
    /// the three standard steps, 1.0 for everything else).
    #[must_use]
    pub fn step_weight(mut self, id: StepId, weight: f64) -> Self {
        self.cascade.set_weight(id, weight);
        self
    }

    /// Set the intra-table parallelism policy (see
    /// [`ParallelismPolicy`]): when the
    /// [`CascadeExecutor`] may run a step's pending columns in
    /// parallel. Execution strategy only — output is bit-identical
    /// either way.
    #[must_use]
    pub fn parallelism(mut self, policy: ParallelismPolicy) -> Self {
        self.config.parallelism = policy;
        self
    }

    /// Set the worker budget for intra-table column chunks
    /// ([`SigmaTyperConfig::column_threads`]; `0` = auto).
    #[must_use]
    pub fn column_threads(mut self, threads: usize) -> Self {
        self.config.column_threads = threads;
        self
    }

    /// Select the embedding-inference backend for this instance (see
    /// [`crate::backend`] for the built-in choices). The default,
    /// [`EmbeddingBackendKind::ReferenceF32`], is bit-identical to the
    /// original hardwired f32 path; `QuantizedI8` and `BlockedSimd`
    /// trade bit-identity for raw speed (held within a golden
    /// tolerance on the eval corpora), and `BatchedFrontier` amortizes
    /// one matmul per frontier chunk while staying bit-exact. A
    /// request may override the choice per call via
    /// [`RequestOptions::with_embedding_backend`]. Non-default
    /// backends fingerprint their own cache keys, so switching never
    /// serves one backend's cached scores to another.
    ///
    /// ```
    /// use sigmatyper::{EmbeddingBackendKind, SigmaTyper, TrainingConfig};
    /// # use tu_corpus::{generate_corpus, CorpusConfig};
    /// # use tu_ontology::builtin_ontology;
    /// # let ontology = builtin_ontology();
    /// # let corpus = generate_corpus(&ontology, &CorpusConfig::database_like(3, 6));
    /// # let global = sigmatyper::train_global(ontology, &corpus, &TrainingConfig::fast());
    /// let typer = SigmaTyper::builder(std::sync::Arc::new(global))
    ///     .embedding_backend(EmbeddingBackendKind::QuantizedI8)
    ///     .build();
    /// ```
    #[must_use]
    pub fn embedding_backend(mut self, backend: EmbeddingBackendKind) -> Self {
        self.config.embedding_backend = backend;
        self
    }

    /// Attach a step cache (see [`crate::cache`]): every step consults
    /// it before running and inserts after, making repeat crawls of
    /// unchanged tables skip most step work. Pass a shared `Arc` to
    /// let several customer instances (or a fleet of services) pool
    /// one store's capacity — entries stay disjoint because every
    /// instance (and every adaptation event) holds a process-globally
    /// unique cache epoch, hashed into each fingerprint; two instances
    /// share an epoch only while one is an unmutated clone of the
    /// other, i.e. while their models really are identical.
    #[must_use]
    pub fn step_cache(mut self, cache: Arc<dyn StepCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attach the default step-cache backend — a
    /// [`ShardedLruCache`] bounded at `capacity` entries.
    #[must_use]
    pub fn cached(self, capacity: usize) -> Self {
        self.step_cache(Arc::new(ShardedLruCache::new(capacity)))
    }

    /// Attach a shared [`CostModel`] instead of the fresh one `build`
    /// creates by default — e.g. to pool cost telemetry across several
    /// customer instances serving similar schemas, or to seed a
    /// deployment with offline measurements before the first request.
    #[must_use]
    pub fn cost_model(mut self, cost: Arc<CostModel>) -> Self {
        self.cost = Some(cost);
        self
    }

    /// Attach a durable [`EpochSource`] — typically a
    /// [`DurableEpochSource`](crate::diskcache::DurableEpochSource)
    /// file next to a [`DiskCache`](crate::diskcache::DiskCache)
    /// segment. `build()` then *resumes* the source's current epoch
    /// instead of drawing a fresh one, so a restarted process keeps
    /// reaching the entries its predecessor persisted; every
    /// adaptation advances the source durably before the new epoch is
    /// used. One source belongs to one customer: point different
    /// customers (whose models differ) at different files.
    #[must_use]
    pub fn epoch_source(mut self, source: Arc<dyn EpochSource>) -> Self {
        self.epoch_source = Some(source);
        self
    }

    /// Build the customer instance.
    #[must_use]
    pub fn build(self) -> SigmaTyper {
        let ontology = self.global.ontology.clone();
        // Even a freshly built instance gets a globally unique epoch:
        // two customers built over different global models (or with
        // different custom step implementations) must never produce
        // colliding cache keys. A durable source *resumes* its stored
        // epoch instead — deliberately not an advance: a restart with
        // unchanged models must keep reaching the previous process's
        // persisted entries.
        let epoch = self
            .epoch_source
            .as_ref()
            .map_or_else(next_epoch, |s| s.current());
        SigmaTyper {
            global: self.global,
            ontology,
            local: LocalModel::new(),
            config: self.config,
            cascade: self.cascade,
            cache: self.cache,
            cost: self.cost.unwrap_or_default(),
            epoch,
            epoch_source: self.epoch_source,
        }
    }
}

impl SigmaTyper {
    /// Create a customer instance over a shared global model with the
    /// standard three-step cascade.
    #[must_use]
    pub fn new(global: Arc<GlobalModel>, config: SigmaTyperConfig) -> Self {
        SigmaTyper::builder(global).config(config).build()
    }

    /// Start building a customer instance with a customizable cascade.
    /// The builder starts from the standard pipeline (header → lookup →
    /// embedding) and the default configuration.
    #[must_use]
    pub fn builder(global: Arc<GlobalModel>) -> SigmaTyperBuilder {
        SigmaTyperBuilder {
            global,
            config: SigmaTyperConfig::default(),
            cascade: Cascade::standard(),
            cache: None,
            cost: None,
            epoch_source: None,
        }
    }

    /// Re-draw this customer's cache epoch after an adaptation event:
    /// from the durable source (write-ahead — persisted before use)
    /// when one is installed, else from the in-process counter.
    fn bump_epoch(&mut self) {
        self.epoch = self
            .epoch_source
            .as_ref()
            .map_or_else(next_epoch, |s| s.advance());
    }

    /// The (customer-local) ontology.
    #[must_use]
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// The shared global model.
    #[must_use]
    pub fn global(&self) -> &GlobalModel {
        &self.global
    }

    /// The customer's local model.
    #[must_use]
    pub fn local(&self) -> &LocalModel {
        &self.local
    }

    /// Current configuration.
    #[must_use]
    pub fn config(&self) -> &SigmaTyperConfig {
        &self.config
    }

    /// Mutable configuration (τ sweeps and ablations).
    pub fn config_mut(&mut self) -> &mut SigmaTyperConfig {
        &mut self.config
    }

    /// The annotation cascade this instance runs.
    #[must_use]
    pub fn cascade(&self) -> &Cascade {
        &self.cascade
    }

    /// Mutable cascade, for reconfiguring steps between batches (like
    /// adaptation, cascade surgery is a customer-local, single-writer
    /// operation — never concurrent with serving).
    ///
    /// Borrowing the cascade mutably bumps the cache epoch: removing a
    /// step and inserting a *different implementation under the same
    /// [`StepId`]* would otherwise let the cache serve the old
    /// implementation's scores. (Pure reorders are also covered — the
    /// step order is part of the fingerprint — so the bump only costs
    /// cold lookups, never correctness.)
    pub fn cascade_mut(&mut self) -> &mut Cascade {
        self.bump_epoch();
        &mut self.cascade
    }

    /// The configured step cache, if any.
    #[must_use]
    pub fn step_cache(&self) -> Option<&Arc<dyn StepCache>> {
        self.cache.as_ref()
    }

    /// Attach or detach a step cache on an existing instance (see
    /// [`SigmaTyperBuilder::step_cache`]).
    pub fn set_step_cache(&mut self, cache: Option<Arc<dyn StepCache>>) {
        self.cache = cache;
    }

    /// The current cache epoch: a process-globally unique, monotone
    /// value drawn at build time and re-drawn by
    /// [`SigmaTyper::feedback`], [`SigmaTyper::implicit_approve`],
    /// [`SigmaTyper::register_custom_type`],
    /// [`SigmaTyper::cascade_mut`], and
    /// [`SigmaTyper::invalidate_cache`]. It is hashed into every
    /// column fingerprint, so a re-draw makes all previously cached
    /// entries unreachable for this customer — and global uniqueness
    /// keeps different instances' entries disjoint in a shared cache.
    ///
    /// With a durable [`EpochSource`] installed, this re-reads the
    /// source: an advance performed by *another process* sharing the
    /// source's file is observed here, so this instance stops
    /// reaching entries that adaptation elsewhere made stale.
    #[must_use]
    pub fn cache_epoch(&self) -> u64 {
        self.epoch_source
            .as_ref()
            .map_or(self.epoch, |s| s.current())
    }

    /// The installed durable epoch source, if any.
    #[must_use]
    pub fn epoch_source(&self) -> Option<&Arc<dyn EpochSource>> {
        self.epoch_source.as_ref()
    }

    /// Manually invalidate this customer's cached step results — for
    /// out-of-band changes the system cannot observe (say, a process
    /// that mutated shared lookup data behind the `Arc`). Entries are
    /// not freed, just unreachable; they age out of the LRU.
    pub fn invalidate_cache(&mut self) {
        self.bump_epoch();
    }

    /// The per-step cost/yield telemetry this instance has accumulated
    /// (see [`crate::cost`]). Shared by `Arc` across clones, so a
    /// batch service's workers feed one model.
    #[must_use]
    pub fn cost_model(&self) -> &Arc<CostModel> {
        &self.cost
    }

    /// Cost-aware step ordering: re-sort the cascade by this
    /// customer's measured per-step cost per unit yield (cheapest
    /// first; see [`Cascade::reorder_by_cost`]). Returns whether the
    /// order changed. Routed through
    /// [`SigmaTyper::cascade_mut`], so the cache epoch bumps and no
    /// stale pre-reorder scores can be served.
    pub fn reorder_cascade_by_cost(&mut self) -> bool {
        let cost = Arc::clone(&self.cost);
        self.cascade_mut().reorder_by_cost(&cost)
    }

    /// Register a customer-specific semantic type. The type is matched
    /// through locally inferred LFs and learned by the finetuned local
    /// embedding model via one of the reserved MLP classes.
    ///
    /// # Panics
    /// Panics when all reserved classes are exhausted.
    pub fn register_custom_type(
        &mut self,
        name: &str,
        kind: ValueKind,
        aliases: &[&str],
    ) -> TypeId {
        let id = self
            .ontology
            .register(name, Category::Misc, kind, aliases, None);
        assert!(
            id.index() < self.global.embedding.n_classes(),
            "reserved class space exhausted; raise TrainingConfig::reserve_classes"
        );
        self.bump_epoch();
        id
    }

    /// Annotate a table: run the configured cascade per column,
    /// aggregate with the soft majority vote, and apply τ (paper
    /// Figure 4). Execution strategy (sequential vs column-parallel)
    /// follows [`SigmaTyperConfig::parallelism`] and
    /// [`SigmaTyperConfig::column_threads`].
    ///
    /// This is a thin wrapper over [`SigmaTyper::annotate_request`]
    /// with default options (`Strict`, unbounded) — bit-identical to
    /// the request path, proven in the golden suite — discarding the
    /// (empty) [`DegradationReport`].
    #[must_use]
    pub fn annotate(&self, table: &Table) -> TableAnnotation {
        self.annotate_request(&AnnotationRequest::new(table))
            .into_annotation()
    }

    /// Annotate under a typed [`AnnotationRequest`]: budget, degradation
    /// policy, and execution overrides per request (see
    /// [`crate::request`] for the semantics). Returns the annotation
    /// plus the [`DegradationReport`] recording which steps were
    /// skipped or truncated and the budget accounting.
    #[must_use]
    pub fn annotate_request(&self, request: &AnnotationRequest<'_>) -> AnnotationOutcome {
        let mut config = self.config;
        if let Some(policy) = request.options.parallelism {
            config.parallelism = policy;
        }
        if let Some(threads) = request.options.column_threads {
            config.column_threads = threads;
        }
        self.annotate_request_with(request, &CascadeExecutor::from_config(&config))
    }

    /// [`SigmaTyper::annotate_request`] through an explicitly
    /// constructed [`CascadeExecutor`] (the executor wins over the
    /// request's parallelism overrides — callers managing their own
    /// worker budgets, like the batch scheduler, already resolved
    /// them).
    #[must_use]
    pub fn annotate_request_with(
        &self,
        request: &AnnotationRequest<'_>,
        executor: &CascadeExecutor,
    ) -> AnnotationOutcome {
        let (budget, _) = request.options.resolved();
        let ledger = BudgetLedger::from_budget(budget);
        self.annotate_request_shared_with_base(
            request.table,
            request.base,
            executor,
            &request.options,
            &ledger,
        )
    }

    /// [`SigmaTyper::annotate`] through an explicitly constructed
    /// [`CascadeExecutor`] — for callers that manage their own worker
    /// budgets, like the two-level scheduler in
    /// [`AnnotationService`](crate::service::AnnotationService), which
    /// hands each table worker its share of the batch-wide budget.
    /// Any executor produces bit-identical annotations; only the wall
    /// clock differs.
    ///
    /// A thin wrapper over [`SigmaTyper::annotate_request_with`] with
    /// default options — every public entry point funnels into the one
    /// request core, [`SigmaTyper::annotate_request_shared`].
    #[must_use]
    pub fn annotate_with(&self, table: &Table, executor: &CascadeExecutor) -> TableAnnotation {
        self.annotate_request_with(&AnnotationRequest::new(table), executor)
            .into_annotation()
    }

    /// The request core, against an **externally owned**
    /// [`BudgetLedger`] — this is how
    /// [`AnnotationService::annotate_batch_request`] shares one
    /// batch-wide ledger across its worker threads (degrade the
    /// batch, don't queue it). The ledger must be consistent with
    /// `options` ([`RequestOptions::resolved`] decides budget and
    /// policy); single-request callers should prefer
    /// [`SigmaTyper::annotate_request`], which owns its ledger.
    ///
    /// [`AnnotationService::annotate_batch_request`]:
    ///     crate::service::AnnotationService::annotate_batch_request
    #[must_use]
    pub fn annotate_request_shared(
        &self,
        table: &Table,
        executor: &CascadeExecutor,
        options: &RequestOptions,
        ledger: &BudgetLedger,
    ) -> AnnotationOutcome {
        self.annotate_request_shared_with_base(table, None, executor, options, ledger)
    }

    /// [`SigmaTyper::annotate_request_shared`] with an optional base
    /// crawl, enabling the delta-aware recrawl path (see
    /// [`AnnotationRequest::with_base`]): per-column deltas are diffed
    /// against `base`, the new crawl's fingerprints are derived
    /// through fingerprint delta chains (O(changed cells) instead of
    /// rehashing the table), and cacheable steps whose input signal
    /// moved less than their sensitivity threshold reuse the base
    /// crawl's cached scores. Falls back to the plain path when the
    /// table's shape changed, the cache is off, or `base` is `None`.
    #[must_use]
    pub fn annotate_request_shared_with_base(
        &self,
        table: &Table,
        base: Option<&Table>,
        executor: &CascadeExecutor,
        options: &RequestOptions,
        ledger: &BudgetLedger,
    ) -> AnnotationOutcome {
        let (_, policy) = options.resolved();
        // Apply the per-request backend override *here*, on the config
        // handed to the executor: the cache fingerprint is derived from
        // this same config inside `run_budgeted`, so a non-default
        // backend automatically separates its cache keys.
        let mut config = self.config;
        if let Some(backend) = options.embedding_backend {
            config.embedding_backend = backend;
        }
        let cache_ctx = if options.bypass_cache {
            None
        } else {
            self.cache.as_deref().map(|cache| CacheContext {
                cache,
                // `cache_epoch()` (not the `epoch` snapshot): with a
                // durable source this observes advances made by other
                // processes since this instance was built.
                epoch: self.cache_epoch(),
            })
        };
        // Delta-aware recrawl: diff against the base crawl, advance
        // retained column-hash states over the deltas (chained
        // fingerprints are bit-identical to fresh ones), and hand the
        // executor the base fingerprints + per-column movements for
        // the sensitivity-gated reuse path. A shape change (column
        // count) diffs to `None` and falls back to a full recompute.
        // Owned backing for the borrowed `DeltaContext` handed to the
        // executor below.
        struct DeltaData {
            fingerprints: Vec<ColumnFingerprint>,
            base_fingerprints: Vec<ColumnFingerprint>,
            movements: Vec<f64>,
            sensitivity: f64,
        }
        let delta_data: Option<DeltaData> = match (base, cache_ctx) {
            (Some(base), Some(cc)) => TableDelta::between(base, table).map(|table_delta| {
                let step_ids = self.cascade.step_ids();
                let base_fps = column_fingerprints(base, &step_ids, &config, cc.epoch);
                let states: Vec<ColumnHashState> = base
                    .columns()
                    .iter()
                    .zip(table.columns())
                    .zip(&table_delta.columns)
                    .map(|((base_col, new_col), delta)| {
                        let mut state = ColumnHashState::of(base_col);
                        state.apply_delta(new_col, delta);
                        state
                    })
                    .collect();
                let new_fps =
                    column_fingerprints_chained(table, &step_ids, &config, cc.epoch, &states);
                let sensitivity = options
                    .delta_sensitivity
                    .unwrap_or(config.delta_sensitivity)
                    .max(0.0);
                DeltaData {
                    fingerprints: new_fps,
                    base_fingerprints: base_fps,
                    movements: table_delta.movements(),
                    sensitivity,
                }
            }),
            _ => None,
        };
        let delta_ctx = delta_data.as_ref().map(|d| DeltaContext {
            fingerprints: &d.fingerprints,
            base_fingerprints: &d.base_fingerprints,
            movements: &d.movements,
            sensitivity: d.sensitivity,
        });
        let budgeted = executor.run_budgeted(
            &self.cascade,
            table,
            &self.global,
            &self.local,
            &config,
            cache_ctx,
            Some(BudgetContext {
                ledger,
                policy,
                cost: Some(&self.cost),
            }),
            delta_ctx,
        );
        let (per_column, timings) = budgeted.trace;

        let weight_of = |id: StepId| self.cascade.weight(id, &config);
        let columns = per_column
            .into_iter()
            .enumerate()
            .map(|(ci, steps)| {
                let executed: Vec<(StepId, &StepScores)> =
                    steps.iter().map(|(s, sc)| (*s, sc)).collect();
                let mut top_k = soft_majority_vote_with(&executed, &config, &weight_of);
                self.prefer_specific(&mut top_k);
                let (predicted, confidence) = apply_tau(&top_k, config.tau);
                let (steps_run, step_scores): (Vec<StepId>, Vec<StepScores>) =
                    steps.into_iter().unzip();
                ColumnAnnotation {
                    col_idx: ci,
                    top_k,
                    predicted,
                    confidence,
                    steps_run,
                    step_scores,
                }
            })
            .collect();
        let mut annotation = TableAnnotation { columns, timings };
        // Feed the cost model before telemetry is stripped — the EWMA
        // is observation-only and never changes this annotation.
        self.cost.observe(&annotation, config.cascade_threshold);
        match options.telemetry {
            TelemetryVerbosity::Full => {}
            TelemetryVerbosity::TimingsOnly => {
                for col in &mut annotation.columns {
                    col.step_scores = Vec::new();
                }
            }
            TelemetryVerbosity::Minimal => {
                for col in &mut annotation.columns {
                    col.step_scores = Vec::new();
                }
                annotation.timings = Vec::new();
            }
        }
        AnnotationOutcome {
            annotation,
            degradation: DegradationReport {
                policy,
                budget_nanos: ledger.budget(),
                spent_nanos: budgeted.charged_nanos,
                remaining_nanos: ledger.remaining(),
                skipped: budgeted.skipped,
                delta_reused: budgeted.delta_reused,
                tenant: options.tenant,
            },
        }
    }

    /// Hierarchy-aware tie-breaking: when the two leading candidates are
    /// ancestor and descendant in the ontology (`location` vs `city`),
    /// prefer the more specific type unless the general one leads by a
    /// clear margin. Dictionary evidence for a parent type necessarily
    /// covers its children, so raw confidence favors the parent even
    /// when the child is the right answer.
    fn prefer_specific(&self, top_k: &mut [Candidate]) {
        const SPECIFICITY_MARGIN: f64 = 0.15;
        if top_k.len() < 2 {
            return;
        }
        let leader = top_k[0];
        if leader.ty.is_unknown() || leader.ty.index() >= self.ontology.len() {
            return;
        }
        for i in 1..top_k.len() {
            let challenger = top_k[i];
            if challenger.ty.is_unknown() || challenger.ty.index() >= self.ontology.len() {
                continue;
            }
            let challenger_is_descendant =
                self.ontology.is_a(challenger.ty, leader.ty) && challenger.ty != leader.ty;
            if challenger_is_descendant
                && challenger.confidence >= leader.confidence - SPECIFICITY_MARGIN
            {
                // Promote the specific type to the decision slot while
                // keeping the remainder in confidence order.
                top_k[0..=i].rotate_right(1);
                return;
            }
        }
    }

    /// Explicit feedback: the user relabels column `col_idx` of `table`
    /// as `ty` (Figure 3 ①). Runs the full DPBD loop: infer LFs ②, mine
    /// the customer's table history for weak labels ③/④, extend the
    /// local training set, finetune the local model, and grow `Wl`.
    ///
    /// The prediction being corrected is recomputed through the
    /// configured cascade, so feedback works over custom pipelines too.
    ///
    /// `history` is the customer's table corpus to mine; pass `None` to
    /// skip mining (LFs still registered, demo column still learned).
    pub fn feedback(
        &mut self,
        table: &Table,
        col_idx: usize,
        ty: TypeId,
        history: Option<&Corpus>,
    ) {
        let annotation = self.annotate(table);
        let neighbor_types: Vec<TypeId> = annotation
            .columns
            .iter()
            .filter(|c| c.col_idx != col_idx && !c.predicted.is_unknown())
            .map(|c| c.predicted)
            .collect();
        // The correction contradicts whatever the system predicted: the
        // global weight of that (wrong) type shrinks in this context.
        let previous = annotation.columns[col_idx].predicted;
        if previous != ty && !previous.is_unknown() {
            let header = tu_text::normalize_header(table.headers()[col_idx]);
            // Generic headers ("field_3") appear on unrelated columns in
            // other tables; discounting them there would be collateral
            // damage, so only informative header contexts are recorded.
            if !tu_dp::infer::is_generic_header(&header) {
                self.local.record_override(previous, &header);
            }
        }
        let column = table.column(col_idx).expect("column in range");

        // ② Infer labeling functions from the demonstration.
        let lfs = infer_lfs(
            &Demonstration {
                column,
                neighbor_types: &neighbor_types,
                ty,
            },
            &InferConfig::default(),
        );
        self.local.add_lfs(lfs);
        self.local.record_feedback(ty);

        // Demonstrated column itself becomes a training example.
        let neighbors: Vec<String> = table
            .headers()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != col_idx)
            .map(|(_, h)| (*h).to_owned())
            .collect();
        let mut examples = vec![(column.clone(), neighbors, ty)];

        // ③/④ Mine the customer's history with the full local LF bank.
        if let Some(history) = history {
            let mined = mine_weak_labels(history, &self.local.lfs, &MiningConfig::default());
            for m in mined {
                let at = &history.tables[m.table_idx];
                let col = at.table.column(m.col_idx).expect("mined column");
                let headers: Vec<String> = at
                    .table
                    .headers()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != m.col_idx)
                    .map(|(_, h)| (*h).to_owned())
                    .collect();
                examples.push((col.clone(), headers, m.label.ty));
            }
        }
        self.local.add_training(examples);
        self.refit_local();
        // The local model changed: retire every cached step result.
        self.bump_epoch();
    }

    /// Implicit feedback: the user left the remaining predictions as-is,
    /// so they count as approvals (§4.2). Adds every confidently
    /// predicted column to the local training set. The annotation may
    /// come from any cascade configuration — only the final per-column
    /// decisions matter here.
    pub fn implicit_approve(&mut self, table: &Table, annotation: &TableAnnotation) {
        let headers = table.headers();
        let mut examples = Vec::new();
        for col_ann in &annotation.columns {
            if col_ann.abstained() {
                continue;
            }
            let neighbors: Vec<String> = headers
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != col_ann.col_idx)
                .map(|(_, h)| (*h).to_owned())
                .collect();
            let column = table.column(col_ann.col_idx).expect("column in range");
            examples.push((column.clone(), neighbors, col_ann.predicted));
            self.local.record_feedback(col_ann.predicted);
        }
        if !examples.is_empty() {
            self.local.add_training(examples);
            self.refit_local();
        }
        // `Wl` grew (feedback counts) even when no training example was
        // added, so cached scores are stale either way.
        self.bump_epoch();
    }

    /// Finetune the local embedding model on all accumulated local
    /// training data.
    fn refit_local(&mut self) {
        if self.local.training.is_empty() {
            return;
        }
        let model = self
            .local
            .finetuned
            .get_or_insert_with(|| self.global.embedding.clone());
        let examples: Vec<(&tu_table::Column, Vec<&str>, TypeId)> = self
            .local
            .training
            .iter()
            .map(|(c, n, t)| (c, n.iter().map(String::as_str).collect(), *t))
            .collect();
        model.partial_fit(&examples, 6);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainingConfig;
    use crate::global::train_global;
    use crate::prediction::Step;
    use crate::step::{RegexOnlyStep, StepContext};
    use tu_corpus::{generate_corpus, CorpusConfig};
    use tu_ontology::{builtin_id, builtin_ontology};
    use tu_table::Column;

    #[test]
    fn simulated_processes_never_reuse_an_epoch() {
        // Two "processes" — distinct (pid, startup time) seeds — each
        // drawing a long run of counter epochs the way `next_epoch`
        // does (seed + i): the runs must be disjoint, and each run
        // monotone. A zero seed (the old behavior) fails this the
        // moment both processes exist.
        let seed_a = process_epoch_seed(1111, 42);
        let seed_b = process_epoch_seed(2222, 43);
        assert_ne!(seed_a, seed_b);
        let run = |seed: u64| (0..1000u64).map(move |i| seed.wrapping_add(i));
        let a: std::collections::HashSet<u64> = run(seed_a).collect();
        assert!(
            run(seed_b).all(|e| !a.contains(&e)),
            "epoch reused across processes"
        );
        assert!(run(seed_a).zip(run(seed_a).skip(1)).all(|(x, y)| y > x));
        // Seeds leave the counter its monotone headroom.
        assert!(seed_a < (1 << 63) && seed_b < (1 << 63));
        // Determinism in the inputs (what makes the simulation valid).
        assert_eq!(seed_a, process_epoch_seed(1111, 42));
        // The live counter draws from the same scheme and moves.
        let e1 = next_epoch();
        let e2 = next_epoch();
        assert!(e2 > e1);
    }

    fn shared_global() -> Arc<GlobalModel> {
        let o = builtin_ontology();
        let mut cfg = CorpusConfig::database_like(51, 60);
        cfg.ood_column_rate = 0.25;
        let corpus = generate_corpus(&o, &cfg);
        Arc::new(train_global(o, &corpus, &TrainingConfig::fast()))
    }

    fn system() -> SigmaTyper {
        SigmaTyper::new(shared_global(), SigmaTyperConfig::default())
    }

    fn figure3_table() -> Table {
        Table::new(
            "employees",
            vec![
                Column::from_raw("Name", &["Han Phi", "Thomas Do", "Alexis Nan"]),
                Column::from_raw("Income", &["50000", "60000", "70000"]),
                Column::from_raw("Company", &["nytco", "Adyen", "Sigma"]),
                Column::from_raw("Cities", &["New York", "Amsterdam", "San Francisco"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn annotates_figure3_table() {
        let st = system();
        let o = st.ontology();
        let ann = st.annotate(&figure3_table());
        assert_eq!(ann.columns.len(), 4);
        // Clear headers must resolve correctly.
        assert_eq!(ann.columns[0].predicted, builtin_id(o, "name"));
        assert_eq!(ann.columns[1].predicted, builtin_id(o, "salary"));
        assert_eq!(ann.columns[3].predicted, builtin_id(o, "city"));
        // Header step ran for every column; timings recorded per step.
        assert!(ann.columns.iter().all(|c| c.steps_run[0] == Step::Header));
        assert_eq!(ann.timings.len(), 3);
        assert_eq!(ann.timings[0].name, "header");
        assert_eq!(ann.timings[0].columns, 4);
        assert!(ann.nanos_for(Step::Header) > 0);
    }

    #[test]
    fn cascade_skips_resolved_columns() {
        let st = system();
        let ann = st.annotate(&figure3_table());
        // "Income" is an exact alias → header step confidence 1.0 → later
        // steps must not run for it.
        let income = &ann.columns[1];
        assert_eq!(income.steps_run, vec![Step::Header]);
        assert_eq!(
            income.resolving_step(st.config().cascade_threshold),
            Some(Step::Header)
        );
        // The skip shows up in telemetry: later steps ran on fewer
        // columns than the header step did.
        assert!(ann.timings[1].columns < ann.timings[0].columns);
    }

    #[test]
    fn headerless_column_falls_through_to_lookup() {
        let st = system();
        let o = st.ontology();
        let table = Table::new(
            "t",
            vec![Column::from_raw(
                "c_17",
                &["ada@x.com", "bob@y.org", "eve@z.net"],
            )],
        )
        .unwrap();
        let ann = st.annotate(&table);
        assert!(ann.columns[0].steps_run.contains(&Step::Lookup));
        assert_eq!(ann.columns[0].predicted, builtin_id(o, "email"));
    }

    #[test]
    fn feedback_adapts_predictions() {
        let mut st = system();
        let o = st.ontology().clone();
        let phone = builtin_id(&o, "phone number");
        // A customer whose "contact" columns hold bare 8-digit numbers —
        // initially mis-predicted (identifier-ish), per Fig. 1b.
        let mk = |seed: u64| {
            let vals: Vec<String> = (0..30)
                .map(|i| format!("{}", 20_000_000 + seed * 1000 + i * 137))
                .collect();
            Table::new(
                format!("contacts_{seed}"),
                vec![Column::from_raw("contact", &vals)],
            )
            .unwrap()
        };
        let before = st.annotate(&mk(1)).columns[0].predicted;
        assert_ne!(before, phone, "sanity: starts wrong");
        // Three explicit corrections.
        for s in 1..=3 {
            st.feedback(&mk(s), 0, phone, None);
        }
        let after = st.annotate(&mk(9)).columns[0].predicted;
        assert_eq!(after, phone, "system must adapt to the customer's context");
        assert!(st.local().wl(phone) > 0.5);
        assert!(!st.local().lfs.is_empty());
    }

    #[test]
    fn implicit_approval_grows_training() {
        let mut st = system();
        let table = figure3_table();
        let ann = st.annotate(&table);
        let before = st.local().training.len();
        st.implicit_approve(&table, &ann);
        assert!(st.local().training.len() > before);
        assert!(st.local().total_feedback() > 0);
    }

    #[test]
    fn custom_type_registration_and_learning() {
        let mut st = system();
        let gene = st.register_custom_type("gene id", ValueKind::Identifier, &["ensembl id"]);
        assert!(gene.index() >= st.global().ontology.len());
        // Teach it via feedback.
        let mk = |seed: u64| {
            let vals: Vec<String> = (0..25)
                .map(|i| format!("ENSG{:08}", seed * 100 + i))
                .collect();
            Table::new(
                format!("genes_{seed}"),
                vec![Column::from_raw("gene", &vals)],
            )
            .unwrap()
        };
        for s in 1..=3 {
            st.feedback(&mk(s), 0, gene, None);
        }
        let ann = st.annotate(&mk(7));
        assert_eq!(
            ann.columns[0].predicted, gene,
            "custom type must be learnable"
        );
    }

    #[test]
    fn ood_column_abstains() {
        let st = system();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let vals =
            tu_corpus::ood::generate_ood_column(&mut rng, tu_corpus::OodKind::GeneSequence, 30);
        let table = Table::new("t", vec![Column::new("sequence", vals)]).unwrap();
        let ann = st.annotate(&table);
        assert!(
            ann.columns[0].abstained() || ann.columns[0].confidence < 0.7,
            "OOD column should abstain or be unconfident: {:?} conf {}",
            ann.columns[0].predicted,
            ann.columns[0].confidence
        );
    }

    #[test]
    fn specific_type_beats_its_ancestor_on_close_votes() {
        let st = system();
        let o = st.ontology();
        let city = builtin_id(o, "city");
        let location = builtin_id(o, "location");
        let mut top = vec![
            Candidate {
                ty: location,
                confidence: 0.95,
            },
            Candidate {
                ty: city,
                confidence: 0.88,
            },
        ];
        st.prefer_specific(&mut top);
        assert_eq!(top[0].ty, city, "child within margin wins");
        // A clear margin keeps the general type.
        let mut top = vec![
            Candidate {
                ty: location,
                confidence: 0.95,
            },
            Candidate {
                ty: city,
                confidence: 0.5,
            },
        ];
        st.prefer_specific(&mut top);
        assert_eq!(top[0].ty, location);
        // Unrelated types never swap.
        let salary = builtin_id(o, "salary");
        let mut top = vec![
            Candidate {
                ty: location,
                confidence: 0.9,
            },
            Candidate {
                ty: salary,
                confidence: 0.89,
            },
        ];
        st.prefer_specific(&mut top);
        assert_eq!(top[0].ty, location);
    }

    /// Everything except wall-clock timing must match bit for bit.
    fn assert_same_annotation(a: &TableAnnotation, b: &TableAnnotation) {
        assert_eq!(a.columns.len(), b.columns.len());
        for (ca, cb) in a.columns.iter().zip(&b.columns) {
            assert_eq!(ca.predicted, cb.predicted);
            assert_eq!(ca.confidence.to_bits(), cb.confidence.to_bits());
            assert_eq!(ca.top_k, cb.top_k);
            assert_eq!(ca.steps_run, cb.steps_run);
            for (sa, sb) in ca.step_scores.iter().zip(&cb.step_scores) {
                assert_eq!(sa.candidates, sb.candidates);
            }
        }
    }

    #[test]
    fn cached_annotation_is_identical_and_hits_on_recrawl() {
        let global = shared_global();
        let plain = SigmaTyper::builder(global.clone()).build();
        let cached = SigmaTyper::builder(global).cached(4096).build();
        assert!(cached.step_cache().is_some());
        assert!(plain.step_cache().is_none());
        // Opaque headers push columns past the header step, so the
        // cacheable tail steps (lookup, embedding) actually execute.
        let table = Table::new(
            "t",
            vec![
                Column::from_raw("Name", &["Han Phi", "Thomas Do", "Alexis Nan"]),
                Column::from_raw("c_17", &["ada@x.com", "bob@y.org", "eve@z.net"]),
                Column::from_raw("xq7_zz", &["lorem ipsum", "dolor sit", "amet"]),
            ],
        )
        .unwrap();

        // The header step opts out of memoization (cache admission):
        // its counters stay quiet on every crawl while cacheable steps
        // insert on cold and hit on warm.
        let split = |ann: &TableAnnotation| {
            let (mut header_runs, mut runs, mut hits, mut misses, mut inserts) = (0, 0, 0, 0, 0);
            for t in &ann.timings {
                if t.step == StepId::HEADER {
                    header_runs += t.columns;
                    assert_eq!(
                        (t.cache_hits, t.cache_misses, t.cache_inserts),
                        (0, 0, 0),
                        "non-cacheable step must never touch the cache"
                    );
                } else {
                    runs += t.columns;
                    hits += t.cache_hits;
                    misses += t.cache_misses;
                    inserts += t.cache_inserts;
                }
            }
            (header_runs, runs, hits, misses, inserts)
        };

        // Cold crawl: nothing to hit; every executed cacheable column
        // inserted.
        let cold = cached.annotate(&table);
        assert_same_annotation(&plain.annotate(&table), &cold);
        let (cold_header, cold_runs, cold_hits, cold_misses, cold_inserts) = split(&cold);
        assert!(cold_header > 0);
        assert!(cold_runs > 0);
        assert_eq!(cold_hits, 0);
        assert_eq!(cold_inserts, cold_runs);
        assert_eq!(cold_misses, cold_runs);

        // Warm recrawl of the same table: bit-identical; cacheable
        // steps run nothing (served from cache), the header step
        // simply re-runs its frontier.
        let warm = cached.annotate(&table);
        assert_same_annotation(&cold, &warm);
        let (warm_header, warm_runs, warm_hits, _, warm_inserts) = split(&warm);
        assert_eq!(warm_header, cold_header);
        assert_eq!(warm_runs, 0);
        assert_eq!(warm_hits, cold_runs);
        assert_eq!(warm_inserts, 0);
        // Uncached instances report quiet counters.
        let plain_ann = plain.annotate(&table);
        assert!(plain_ann
            .timings
            .iter()
            .all(|t| t.cache_hits == 0 && t.cache_misses == 0 && t.cache_inserts == 0));
    }

    #[test]
    fn adaptation_events_bump_the_cache_epoch() {
        let mut st = SigmaTyper::builder(shared_global()).cached(1024).build();
        let e0 = st.cache_epoch();
        // Separately built instances never share an epoch (the global
        // draw is what keeps a shared cache sound across customers).
        assert_ne!(
            SigmaTyper::builder(shared_global()).build().cache_epoch(),
            e0
        );
        let table = figure3_table();
        let ann = st.annotate(&table);
        assert_eq!(st.cache_epoch(), e0, "read-only annotate never bumps");
        assert_eq!(st.clone().cache_epoch(), e0, "clones share the epoch");
        st.implicit_approve(&table, &ann);
        let e1 = st.cache_epoch();
        assert!(e1 > e0);
        st.feedback(&table, 1, builtin_id(st.ontology(), "salary"), None);
        let e2 = st.cache_epoch();
        assert!(e2 > e1);
        st.register_custom_type("widget", ValueKind::Textual, &[]);
        let e3 = st.cache_epoch();
        assert!(e3 > e2);
        let _ = st.cascade_mut();
        let e4 = st.cache_epoch();
        assert!(e4 > e3);
        st.invalidate_cache();
        assert!(st.cache_epoch() > e4);
    }

    #[test]
    fn shared_cache_never_cross_serves_customers() {
        // Two separately built customers pooling one cache: customer A
        // adapts, customer B stays fresh. B's annotations must come
        // from B's own models — never from A's cached entries.
        let cache: Arc<dyn StepCache> = Arc::new(crate::cache::ShardedLruCache::new(1 << 14));
        let global = shared_global();
        let mut a = SigmaTyper::builder(global.clone())
            .step_cache(Arc::clone(&cache))
            .build();
        let b = SigmaTyper::builder(global.clone())
            .step_cache(Arc::clone(&cache))
            .build();
        let plain = SigmaTyper::builder(global).build();
        let o = plain.ontology().clone();
        let phone = builtin_id(&o, "phone number");
        let mk = |seed: u64| {
            let vals: Vec<String> = (0..30)
                .map(|i| format!("{}", 50_000_000 + seed * 1000 + i * 101))
                .collect();
            Table::new(
                format!("contacts_{seed}"),
                vec![Column::from_raw("contact", &vals)],
            )
            .unwrap()
        };
        for s in 1..=3 {
            a.feedback(&mk(s), 0, phone, None);
        }
        let t = mk(9);
        // Warm the shared cache with A's adapted scores.
        let from_a = a.annotate(&t);
        assert_eq!(from_a.columns[0].predicted, phone);
        // B annotates the same table through the same cache: its
        // epoch differs, so it misses A's entries and computes with
        // its own (fresh) models — identical to an uncached instance.
        let from_b = b.annotate(&t);
        assert!(from_b.timings.iter().all(|x| x.cache_hits == 0));
        assert_same_annotation(&plain.annotate(&t), &from_b);
        assert_ne!(from_b.columns[0].predicted, phone, "sanity: B unadapted");
    }

    #[test]
    fn feedback_invalidates_cached_scores() {
        let mut cached = SigmaTyper::builder(shared_global()).cached(4096).build();
        let mut plain = cached.clone();
        plain.set_step_cache(None);
        let o = cached.ontology().clone();
        let phone = builtin_id(&o, "phone number");
        let mk = |seed: u64| {
            let vals: Vec<String> = (0..30)
                .map(|i| format!("{}", 40_000_000 + seed * 1000 + i * 113))
                .collect();
            Table::new(
                format!("contacts_{seed}"),
                vec![Column::from_raw("contact", &vals)],
            )
            .unwrap()
        };
        // Warm the cache on the pre-adaptation state.
        let t = mk(9);
        let _ = cached.annotate(&t);
        assert!(cached.annotate(&t).timings.iter().any(|x| x.cache_hits > 0));
        // Adapt both instances identically.
        for s in 1..=3 {
            cached.feedback(&mk(s), 0, phone, None);
            plain.feedback(&mk(s), 0, phone, None);
        }
        // The warm cache must not serve pre-adaptation scores: the
        // post-adaptation cached result is bit-identical to the
        // uncached adapted instance, and the first post-adaptation
        // crawl re-misses (fresh epoch → fresh fingerprints).
        let after = cached.annotate(&t);
        assert_eq!(after.columns[0].predicted, phone);
        assert_same_annotation(&plain.annotate(&t), &after);
        assert!(after.timings.iter().all(|x| x.cache_hits == 0));
        // ... and the recrawl after that hits again.
        assert!(cached.annotate(&t).timings.iter().any(|x| x.cache_hits > 0));
    }

    /// A cheap custom step that opts out of memoization.
    #[derive(Debug)]
    struct UncachedStep;

    impl AnnotationStep for UncachedStep {
        fn id(&self) -> StepId {
            StepId::custom(9)
        }

        fn name(&self) -> &str {
            "uncached"
        }

        fn skip(&self, _ctx: &StepContext<'_>) -> bool {
            false
        }

        fn run(&self, _ctx: &StepContext<'_>) -> StepScores {
            StepScores::default()
        }

        fn cacheable(&self) -> bool {
            false
        }
    }

    /// Cache admission: non-cacheable steps (the built-in header step
    /// and any custom step returning `cacheable() == false`) must
    /// never insert into — or even consult — the step cache.
    #[test]
    fn non_cacheable_steps_never_touch_the_cache() {
        let cache = Arc::new(crate::cache::ShardedLruCache::new(1 << 12));
        let mut typer = SigmaTyper::builder(shared_global())
            .step_cache(cache.clone())
            .build();
        typer.cascade_mut().push(UncachedStep);
        // Opaque headers force the cacheable tail steps to execute, so
        // the insert accounting below is non-trivial.
        let table = Table::new(
            "t",
            vec![
                Column::from_raw("c_17", &["ada@x.com", "bob@y.org", "eve@z.net"]),
                Column::from_raw("xq7_zz", &["lorem ipsum", "dolor sit", "amet"]),
            ],
        )
        .unwrap();
        let inserts_before = cache.stats().inserts;
        for _ in 0..2 {
            let ann = typer.annotate(&table);
            for t in &ann.timings {
                if t.step == StepId::HEADER || t.step == StepId::custom(9) {
                    assert!(t.columns > 0, "{}: non-cacheable step must run", t.name);
                    assert_eq!(
                        (t.cache_hits, t.cache_misses, t.cache_inserts),
                        (0, 0, 0),
                        "{}: non-cacheable step touched the cache",
                        t.name
                    );
                }
            }
        }
        // Every insert that did happen came from a cacheable step.
        let ann = typer.annotate(&table);
        let cacheable_runs: usize = ann
            .timings
            .iter()
            .filter(|t| t.step != StepId::HEADER && t.step != StepId::custom(9))
            .map(|t| t.columns + t.cache_hits)
            .sum();
        assert!(cacheable_runs > 0, "cacheable tail steps must execute");
        assert_eq!(
            cache.stats().inserts - inserts_before,
            cacheable_runs as u64,
            "insert volume must equal cold cacheable executions"
        );
    }

    /// An opaque table no step resolves cheaply: every column walks
    /// the full cascade, so budget degradation has a tail to cut.
    fn opaque_table(cols: usize) -> Table {
        let columns: Vec<Column> = (0..cols)
            .map(|i| {
                Column::from_raw(
                    format!("xq{i}_zz"),
                    &["lorem ipsum", "dolor sit", "amet consect"],
                )
            })
            .collect();
        Table::new("opaque", columns).unwrap()
    }

    #[test]
    fn zero_budget_drop_tail_degrades_deterministically() {
        use crate::request::{AnnotationRequest, DegradationPolicy, SkipReason};
        let st = system();
        let table = opaque_table(3);
        let request = AnnotationRequest::new(&table)
            .with_budget_nanos(0)
            .with_policy(DegradationPolicy::DropTailSteps);
        let outcome = st.annotate_request(&request);
        // Every configured step is dropped, in cascade order, as
        // exhausted — and the report says so exactly.
        assert!(outcome.degraded());
        assert_eq!(
            outcome
                .degradation
                .skipped
                .iter()
                .map(|s| s.step)
                .collect::<Vec<_>>(),
            st.cascade().step_ids()
        );
        assert!(outcome
            .degradation
            .skipped
            .iter()
            .all(|s| s.reason == SkipReason::BudgetExhausted && s.ran == 0 && s.pending == 3));
        assert_eq!(outcome.degradation.budget_nanos, Some(0));
        assert_eq!(outcome.degradation.remaining_nanos, Some(0));
        assert_eq!(outcome.degradation.spent_nanos, 0);
        // Nothing ran, so nothing may be fabricated: all columns
        // abstain with empty traces — and the timing schema stays one
        // record per configured step.
        assert_eq!(outcome.annotation.columns.len(), 3);
        for col in &outcome.annotation.columns {
            assert!(col.abstained());
            assert!(col.steps_run.is_empty());
            assert!(col.top_k.is_empty());
        }
        assert_eq!(outcome.annotation.timings.len(), st.cascade().len());
        assert!(outcome
            .annotation
            .timings
            .iter()
            .all(|t| t.columns == 0 && t.chunks == 0));
        // Deterministic: an identical request degrades identically.
        let again = st.annotate_request(&request);
        assert_eq!(outcome.degradation.skipped, again.degradation.skipped);
    }

    #[test]
    fn zero_budget_best_effort_also_drops_everything() {
        use crate::request::{AnnotationRequest, DegradationPolicy};
        let st = system();
        let table = opaque_table(2);
        let outcome = st.annotate_request(
            &AnnotationRequest::new(&table)
                .with_budget_nanos(0)
                .with_policy(DegradationPolicy::BestEffort),
        );
        assert!(outcome.degraded());
        assert!(outcome.annotation.columns.iter().all(|c| c.abstained()));
    }

    #[test]
    fn strict_policy_reports_overruns_but_never_degrades() {
        use crate::request::{AnnotationRequest, DegradationPolicy};
        let st = system();
        let table = figure3_table();
        let outcome = st.annotate_request(
            &AnnotationRequest::new(&table)
                .with_budget_nanos(1)
                .with_policy(DegradationPolicy::Strict),
        );
        assert!(!outcome.degraded(), "Strict must never skip a step");
        assert!(outcome.degradation.over_budget(), "1 ns is always blown");
        assert_eq!(outcome.degradation.remaining_nanos, Some(0));
        // Output matches the unbudgeted path, decision for decision.
        let plain = st.annotate(&table);
        for (a, b) in outcome.annotation.columns.iter().zip(&plain.columns) {
            assert_eq!(a.predicted, b.predicted);
            assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
        }
    }

    #[test]
    fn predictive_drop_consults_the_cost_model() {
        use crate::request::{AnnotationRequest, DegradationPolicy, SkipReason};
        let st = system();
        // Teach the model an absurd embedding cost; the generous
        // budget comfortably covers the real header/lookup steps, so
        // only the prediction can trigger the drop.
        st.cost_model().set(Step::Embedding, 1e15, 0.5);
        let table = opaque_table(2);
        let outcome = st.annotate_request(
            &AnnotationRequest::new(&table)
                .with_budget_nanos(10_000_000_000) // 10 s
                .with_policy(DegradationPolicy::DropTailSteps),
        );
        let skipped = &outcome.degradation.skipped;
        assert_eq!(skipped.len(), 1, "only embedding may degrade: {skipped:?}");
        assert_eq!(skipped[0].step, Step::Embedding);
        assert_eq!(skipped[0].reason, SkipReason::PredictedOverBudget);
        assert_eq!((skipped[0].pending, skipped[0].ran), (2, 0));
        // Header and lookup ran for every column; embedding for none.
        for col in &outcome.annotation.columns {
            assert!(col.steps_run.contains(&Step::Header));
            assert!(col.steps_run.contains(&Step::Lookup));
            assert!(!col.steps_run.contains(&Step::Embedding));
        }
    }

    #[test]
    fn best_effort_truncates_the_frontier_prefix() {
        use crate::request::{AnnotationRequest, DegradationPolicy, SkipReason};
        let st = system();
        // 1 s per predicted embedding column against a ~3.5 s budget:
        // three columns fit (the real header/lookup cost is orders of
        // magnitude below the slack).
        st.cost_model().set(Step::Embedding, 1e9, 0.5);
        let table = opaque_table(6);
        let outcome = st.annotate_request(
            &AnnotationRequest::new(&table)
                .with_budget_nanos(3_500_000_000)
                .with_policy(DegradationPolicy::BestEffort),
        );
        let truncated: Vec<_> = outcome
            .degradation
            .skipped
            .iter()
            .filter(|s| s.step == Step::Embedding)
            .collect();
        assert_eq!(truncated.len(), 1, "{:?}", outcome.degradation.skipped);
        assert_eq!(truncated[0].reason, SkipReason::FrontierTruncated);
        assert_eq!(truncated[0].pending, 6);
        assert_eq!(truncated[0].ran, 3);
        // The frontier prefix (column order) ran; the tail did not.
        let with_embedding: Vec<usize> = outcome
            .annotation
            .columns
            .iter()
            .filter(|c| c.steps_run.contains(&Step::Embedding))
            .map(|c| c.col_idx)
            .collect();
        assert_eq!(with_embedding, vec![0, 1, 2]);
    }

    #[test]
    fn request_can_bypass_a_warm_cache() {
        use crate::request::AnnotationRequest;
        let st = SigmaTyper::builder(shared_global()).cached(4096).build();
        let table = opaque_table(3);
        let _ = st.annotate(&table); // warm
        let warm = st.annotate(&table);
        assert!(warm.timings.iter().any(|t| t.cache_hits > 0));
        let bypassed = st.annotate_request(&AnnotationRequest::new(&table).with_cache_bypassed());
        assert!(bypassed
            .annotation
            .timings
            .iter()
            .all(|t| t.cache_hits == 0 && t.cache_misses == 0 && t.cache_inserts == 0));
        // Bit-identical anyway: the cache is invisible in the output.
        assert_same_annotation(&warm, &bypassed.annotation);
    }

    #[test]
    fn telemetry_verbosity_strips_payload_not_decisions() {
        use crate::request::{AnnotationRequest, TelemetryVerbosity};
        let st = system();
        let table = figure3_table();
        let full = st.annotate_request(&AnnotationRequest::new(&table));
        let timings_only = st.annotate_request(
            &AnnotationRequest::new(&table).with_telemetry(TelemetryVerbosity::TimingsOnly),
        );
        let minimal = st.annotate_request(
            &AnnotationRequest::new(&table).with_telemetry(TelemetryVerbosity::Minimal),
        );
        assert!(full
            .annotation
            .columns
            .iter()
            .any(|c| !c.step_scores.is_empty()));
        assert!(!full.annotation.timings.is_empty());
        assert!(timings_only
            .annotation
            .columns
            .iter()
            .all(|c| c.step_scores.is_empty()));
        assert_eq!(timings_only.annotation.timings.len(), st.cascade().len());
        assert!(minimal.annotation.timings.is_empty());
        // Decisions survive every level bit for bit.
        for stripped in [&timings_only, &minimal] {
            for (a, b) in stripped
                .annotation
                .columns
                .iter()
                .zip(&full.annotation.columns)
            {
                assert_eq!(a.predicted, b.predicted);
                assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
                assert_eq!(a.top_k, b.top_k);
                assert_eq!(a.steps_run, b.steps_run);
            }
        }
    }

    #[test]
    fn request_parallelism_override_chunks_without_touching_config() {
        use crate::request::AnnotationRequest;
        let st = system();
        assert_eq!(
            st.config().parallelism,
            ParallelismPolicy::default(),
            "sanity: config stays on the default policy"
        );
        let table = opaque_table(4);
        let outcome = st.annotate_request(
            &AnnotationRequest::new(&table)
                .with_parallelism(ParallelismPolicy::FixedChunk { columns: 1 })
                .with_column_threads(2),
        );
        assert!(
            outcome.annotation.timings.iter().any(|t| t.chunks >= 2),
            "FixedChunk{{1}} over a 4-column frontier must chunk"
        );
        // And the override is per-request: output stays bit-identical
        // to the plain path (execution strategy is output-invariant).
        assert_same_annotation(&st.annotate(&table), &outcome.annotation);
    }

    #[test]
    fn annotations_feed_the_shared_cost_model() {
        let st = system();
        assert!(st.cost_model().estimate(Step::Header).is_none());
        let _ = st.annotate(&figure3_table());
        let header = st.cost_model().estimate(Step::Header).unwrap();
        assert!(header.nanos_per_column > 0.0);
        assert!(header.yield_rate > 0.0, "clear headers resolve at step 1");
        // Clones share the model (service workers feed one EWMA).
        let clone = st.clone();
        let samples_before = clone.cost_model().estimate(Step::Header).unwrap().samples;
        let _ = clone.annotate(&figure3_table());
        assert!(st.cost_model().estimate(Step::Header).unwrap().samples > samples_before);
    }

    #[test]
    fn reorder_cascade_by_cost_bumps_the_epoch() {
        let mut st = system();
        st.cost_model().set(Step::Header, 1e6, 0.1);
        st.cost_model().set(Step::Lookup, 10.0, 0.9);
        let epoch = st.cache_epoch();
        assert!(st.reorder_cascade_by_cost());
        assert_eq!(
            st.cascade().step_ids(),
            vec![Step::Lookup, Step::Header, Step::Embedding]
        );
        assert!(
            st.cache_epoch() > epoch,
            "reorder must invalidate the cache"
        );
        // Idempotent second call still bumps (cascade_mut is
        // conservative) but changes nothing.
        assert!(!st.reorder_cascade_by_cost());
    }

    #[test]
    fn tau_zero_never_abstains_on_candidates() {
        let mut st = system();
        st.config_mut().tau = 0.0;
        let ann = st.annotate(&figure3_table());
        assert!(ann.columns.iter().all(|c| !c.top_k.is_empty()));
    }

    #[test]
    fn builder_default_matches_new() {
        let global = shared_global();
        let a = SigmaTyper::new(global.clone(), SigmaTyperConfig::default());
        let b = SigmaTyper::builder(global).build();
        assert_eq!(a.cascade().step_ids(), b.cascade().step_ids());
        let table = figure3_table();
        let (ann_a, ann_b) = (a.annotate(&table), b.annotate(&table));
        for (ca, cb) in ann_a.columns.iter().zip(&ann_b.columns) {
            assert_eq!(ca.predicted, cb.predicted);
            assert_eq!(ca.confidence.to_bits(), cb.confidence.to_bits());
            assert_eq!(ca.steps_run, cb.steps_run);
        }
    }

    #[test]
    fn builder_inserts_and_reorders_regex_only_step() {
        let global = shared_global();
        let typer = SigmaTyper::builder(global)
            .step_at(1, RegexOnlyStep)
            .build();
        assert_eq!(
            typer.cascade().step_ids(),
            vec![
                Step::Header,
                StepId::REGEX_ONLY,
                Step::Lookup,
                Step::Embedding
            ]
        );
        // An opaque-header email column: regex-only resolves it before
        // lookup even gets asked.
        let table = Table::new(
            "t",
            vec![Column::from_raw(
                "c_17",
                &["ada@x.com", "bob@y.org", "eve@z.net"],
            )],
        )
        .unwrap();
        let ann = typer.annotate(&table);
        let o = typer.ontology();
        assert_eq!(ann.columns[0].predicted, builtin_id(o, "email"));
        assert_eq!(
            ann.columns[0].resolving_step(typer.config().cascade_threshold),
            Some(StepId::REGEX_ONLY)
        );
        assert!(!ann.columns[0].steps_run.contains(&Step::Lookup));
        // Telemetry reports the new step by name, in cascade position.
        assert_eq!(ann.timings.len(), 4);
        assert_eq!(ann.timings[1].name, "regex-only");
        assert_eq!(ann.timings[1].columns, 1);
    }

    /// A user-defined step: claims any column whose values all carry a
    /// `TKT-` prefix, voting for a customer-registered type.
    #[derive(Debug)]
    struct TicketStep {
        ty: TypeId,
    }

    impl AnnotationStep for TicketStep {
        fn id(&self) -> StepId {
            StepId::custom(0)
        }

        fn name(&self) -> &str {
            "ticket-prefix"
        }

        fn run(&self, ctx: &StepContext<'_>) -> StepScores {
            let column = ctx.column();
            let vals: Vec<String> = column
                .sample(ctx.config.lookup_sample)
                .into_iter()
                .map(tu_table::Value::render)
                .collect();
            if !vals.is_empty() && vals.iter().all(|v| v.starts_with("TKT-")) {
                StepScores::from_candidates(vec![Candidate {
                    ty: self.ty,
                    confidence: 0.99,
                }])
            } else {
                StepScores::default()
            }
        }
    }

    #[test]
    fn custom_registered_step_end_to_end() {
        let global = shared_global();
        // Register the custom type first (on a throwaway instance) so we
        // know its id, then build the custom cascade.
        let mut typer = SigmaTyper::builder(global).build();
        let ticket = typer.register_custom_type("ticket id", ValueKind::Identifier, &[]);
        typer.cascade_mut().insert(1, TicketStep { ty: ticket });
        typer.cascade_mut().set_weight(StepId::custom(0), 2.0);

        let table = Table::new(
            "tickets",
            vec![
                Column::from_raw("xq7_zz", &["TKT-0001", "TKT-0002", "TKT-0003"]),
                Column::from_raw("city", &["Oslo", "Lima", "Kyiv"]),
            ],
        )
        .unwrap();
        let ann = typer.annotate(&table);
        // The custom step resolves the ticket column and short-circuits
        // the rest of the cascade for it.
        assert_eq!(ann.columns[0].predicted, ticket);
        assert_eq!(
            ann.columns[0].resolving_step(typer.config().cascade_threshold),
            Some(StepId::custom(0))
        );
        assert!(ann.columns[0].steps_run.contains(&StepId::custom(0)));
        assert!(!ann.columns[0].steps_run.contains(&Step::Lookup));
        // The city column passes through the custom step unclaimed.
        assert_eq!(
            ann.columns[1].predicted,
            builtin_id(typer.ontology(), "city")
        );
        // Custom-step telemetry is reported by name. The city column is
        // already header-resolved, so the step only ran on the tickets.
        let t = &ann.timings[1];
        assert_eq!(t.step, StepId::custom(0));
        assert_eq!(t.name, "ticket-prefix");
        assert_eq!(t.columns, 1);
    }

    #[test]
    fn empty_cascade_abstains_everywhere() {
        let global = shared_global();
        let typer = SigmaTyper::builder(global)
            .without_step(Step::Header)
            .without_step(Step::Lookup)
            .without_step(Step::Embedding)
            .build();
        assert!(typer.cascade().is_empty());
        let ann = typer.annotate(&figure3_table());
        assert!(ann.columns.iter().all(ColumnAnnotation::abstained));
        assert!(ann.timings.is_empty());
    }

    /// A dissenting step that always votes one fixed type and never
    /// skips — exists purely to give the vote a second opinionated
    /// participant in the weight-override test.
    #[derive(Debug)]
    struct ConstStep {
        ty: TypeId,
    }

    impl AnnotationStep for ConstStep {
        fn id(&self) -> StepId {
            StepId::custom(1)
        }

        fn name(&self) -> &str {
            "const"
        }

        fn skip(&self, _ctx: &StepContext<'_>) -> bool {
            false
        }

        fn run(&self, _ctx: &StepContext<'_>) -> StepScores {
            StepScores::from_candidates(vec![Candidate {
                ty: self.ty,
                confidence: 0.9,
            }])
        }
    }

    /// A step that counts how often its table-level setup is computed
    /// vs how many chunk calls consumed it.
    #[derive(Debug)]
    struct PrepareCountingStep {
        prepares: Arc<std::sync::atomic::AtomicUsize>,
        chunk_calls: Arc<std::sync::atomic::AtomicUsize>,
    }

    impl AnnotationStep for PrepareCountingStep {
        fn id(&self) -> StepId {
            StepId::custom(5)
        }

        fn name(&self) -> &str {
            "prepare-counter"
        }

        fn skip(&self, _ctx: &StepContext<'_>) -> bool {
            false
        }

        fn run(&self, _ctx: &StepContext<'_>) -> StepScores {
            StepScores::default()
        }

        fn prepare(&self, _ctx: &StepContext<'_>) -> Option<crate::step::TableSetup> {
            self.prepares
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Some(Box::new(()))
        }

        fn run_prepared(
            &self,
            ctx: &StepContext<'_>,
            cols: &[usize],
            _setup: &crate::step::TableSetup,
        ) -> Vec<StepScores> {
            self.chunk_calls
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            cols.iter()
                .map(|&ci| self.run(&ctx.for_column(ci)))
                .collect()
        }
    }

    /// The executor must compute a step's table-level setup once per
    /// (step, table) and share it across *all* chunks — including
    /// column-parallel ones — instead of once per chunk worker.
    #[test]
    fn table_setup_is_prepared_once_across_chunks() {
        let prepares = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let chunk_calls = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let typer = SigmaTyper::builder(shared_global())
            .step(PrepareCountingStep {
                prepares: Arc::clone(&prepares),
                chunk_calls: Arc::clone(&chunk_calls),
            })
            .parallelism(ParallelismPolicy::FixedChunk { columns: 1 })
            .column_threads(3)
            .build();
        let table = Table::new(
            "t",
            (0..4)
                .map(|i| Column::from_raw(format!("xq{i}"), &["lorem", "ipsum"]))
                .collect(),
        )
        .unwrap();
        let _ = typer.annotate(&table);
        let p = prepares.load(std::sync::atomic::Ordering::Relaxed);
        let c = chunk_calls.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(p, 1, "setup must be hoisted to once per table");
        assert_eq!(c, 4, "FixedChunk{{1}} over 4 columns is 4 chunk calls");
        // A second table pays its own setup exactly once more.
        let _ = typer.annotate(&table);
        assert_eq!(prepares.load(std::sync::atomic::Ordering::Relaxed), 2);
    }

    #[test]
    fn step_weight_override_changes_the_vote() {
        let global = shared_global();
        let o = global.ontology.clone();
        let city = builtin_id(&o, "city");
        let salary = builtin_id(&o, "salary");
        let table = Table::new(
            "t",
            vec![Column::from_raw("Cities", &["Oslo", "Lima", "Kyiv"])],
        )
        .unwrap();
        // Header matching says `city` (near-exact, 0.97); the dissenting
        // step says `salary` at 0.9. At the default weight (1.0 for a
        // custom step) the header wins; at 50x the dissenter wins — the
        // override, not the config weight, decides the vote.
        let base = SigmaTyper::builder(global.clone())
            .step(ConstStep { ty: salary })
            .build();
        assert_eq!(base.annotate(&table).columns[0].predicted, city);
        let boosted = SigmaTyper::builder(global)
            .step(ConstStep { ty: salary })
            .step_weight(StepId::custom(1), 50.0)
            .build();
        assert_eq!(boosted.annotate(&table).columns[0].predicted, salary);
    }
}
