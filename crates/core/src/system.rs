//! The SigmaTyper orchestrator: cascade, aggregation, and adaptation.

use crate::aggregate::{apply_tau, soft_majority_vote};
use crate::config::SigmaTyperConfig;
use crate::global::GlobalModel;
use crate::local::LocalModel;
use crate::prediction::{Candidate, ColumnAnnotation, Step, StepScores, TableAnnotation};
use std::sync::Arc;
use std::time::Instant;
use tu_corpus::Corpus;
use tu_dp::{infer_lfs, mine_weak_labels, Demonstration, InferConfig, MiningConfig};
use tu_ontology::{Category, Ontology, TypeId, ValueKind};
use tu_table::Table;

/// One customer's SigmaTyper instance: the shared global model plus this
/// customer's local model (Figure 2's `Customer_i` box).
#[derive(Debug, Clone)]
pub struct SigmaTyper {
    global: Arc<GlobalModel>,
    /// Customer-local ontology (may gain custom types).
    ontology: Ontology,
    local: LocalModel,
    config: SigmaTyperConfig,
}

impl SigmaTyper {
    /// Create a customer instance over a shared global model.
    #[must_use]
    pub fn new(global: Arc<GlobalModel>, config: SigmaTyperConfig) -> Self {
        let ontology = global.ontology.clone();
        SigmaTyper {
            global,
            ontology,
            local: LocalModel::new(),
            config,
        }
    }

    /// The (customer-local) ontology.
    #[must_use]
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// The shared global model.
    #[must_use]
    pub fn global(&self) -> &GlobalModel {
        &self.global
    }

    /// The customer's local model.
    #[must_use]
    pub fn local(&self) -> &LocalModel {
        &self.local
    }

    /// Current configuration.
    #[must_use]
    pub fn config(&self) -> &SigmaTyperConfig {
        &self.config
    }

    /// Mutable configuration (τ sweeps and ablations).
    pub fn config_mut(&mut self) -> &mut SigmaTyperConfig {
        &mut self.config
    }

    /// Register a customer-specific semantic type. The type is matched
    /// through locally inferred LFs and learned by the finetuned local
    /// embedding model via one of the reserved MLP classes.
    ///
    /// # Panics
    /// Panics when all reserved classes are exhausted.
    pub fn register_custom_type(
        &mut self,
        name: &str,
        kind: ValueKind,
        aliases: &[&str],
    ) -> TypeId {
        let id = self
            .ontology
            .register(name, Category::Misc, kind, aliases, None);
        assert!(
            id.index() < self.global.embedding.n_classes(),
            "reserved class space exhausted; raise TrainingConfig::reserve_classes"
        );
        id
    }

    /// Annotate a table: run the 3-step cascade per column, aggregate,
    /// and apply τ (paper Figure 4).
    #[must_use]
    #[allow(clippy::needless_range_loop)] // `ci` also indexes sibling arrays
    pub fn annotate(&self, table: &Table) -> TableAnnotation {
        let n = table.n_cols();
        let normalized: Vec<String> = table
            .headers()
            .iter()
            .map(|h| tu_text::normalize_header(h))
            .collect();

        let mut per_column: Vec<Vec<(Step, StepScores)>> = vec![Vec::new(); n];
        let mut step_nanos = [0u128; 3];

        // ---- Step 1: header matching -------------------------------
        let t0 = Instant::now();
        if self.config.enable_header {
            for (ci, header) in table.headers().iter().enumerate() {
                let mut scores =
                    self.global
                        .header
                        .match_header(header, &self.global.embedder, &self.config);
                // Wg: global header knowledge the customer has repeatedly
                // overridden in this header context loses influence (Fig. 2).
                for c in &mut scores.candidates {
                    c.confidence *= self.local.wg(c.ty, &normalized[ci]);
                }
                per_column[ci].push((Step::Header, scores));
            }
        }
        step_nanos[0] = t0.elapsed().as_nanos();

        // Tentative neighbor types from the best header candidates.
        let tentative: Vec<TypeId> = per_column
            .iter()
            .map(|steps| {
                steps
                    .last()
                    .and_then(|(_, s)| s.best())
                    .map_or(TypeId::UNKNOWN, |c| c.ty)
            })
            .collect();

        // ---- Step 2: value lookup (unresolved columns only) ---------
        let t0 = Instant::now();
        for ci in 0..n {
            if !self.config.enable_lookup
                || self.best_so_far(&per_column[ci]) >= self.config.cascade_threshold
            {
                continue;
            }
            let neighbors: Vec<TypeId> = tentative
                .iter()
                .enumerate()
                .filter(|(i, t)| *i != ci && !t.is_unknown())
                .map(|(_, t)| *t)
                .collect();
            let scores = self.global.lookup.lookup_weighted(
                table.column(ci).expect("column in range"),
                &normalized[ci],
                &neighbors,
                &[&self.global.global_lfs, &self.local.lfs],
                &self.config,
                &|t| self.local.wg(t, &normalized[ci]),
            );
            per_column[ci].push((Step::Lookup, scores));
        }
        step_nanos[1] = t0.elapsed().as_nanos();

        // ---- Step 3: table-embedding model (still unresolved) -------
        let t0 = Instant::now();
        let headers = table.headers();
        for ci in 0..n {
            if !self.config.enable_embedding
                || self.best_so_far(&per_column[ci]) >= self.config.cascade_threshold
            {
                continue;
            }
            let neighbors: Vec<&str> = headers
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != ci)
                .map(|(_, h)| *h)
                .collect();
            let column = table.column(ci).expect("column in range");
            let global_scores = self.global.embedding.predict(column, &neighbors);
            let scores = match &self.local.finetuned {
                Some(local_model) => {
                    let local_scores = local_model.predict(column, &neighbors);
                    self.blend(&global_scores, &local_scores, &normalized[ci])
                }
                None => global_scores,
            };
            per_column[ci].push((Step::Embedding, scores));
        }
        step_nanos[2] = t0.elapsed().as_nanos();

        // ---- Aggregate + τ ------------------------------------------
        let columns = per_column
            .into_iter()
            .enumerate()
            .map(|(ci, steps)| {
                let executed: Vec<(Step, &StepScores)> =
                    steps.iter().map(|(s, sc)| (*s, sc)).collect();
                let mut top_k = soft_majority_vote(&executed, &self.config);
                self.prefer_specific(&mut top_k);
                let (predicted, confidence) = apply_tau(&top_k, self.config.tau);
                let (steps_run, step_scores): (Vec<Step>, Vec<StepScores>) =
                    steps.into_iter().unzip();
                ColumnAnnotation {
                    col_idx: ci,
                    top_k,
                    predicted,
                    confidence,
                    steps_run,
                    step_scores,
                }
            })
            .collect();
        TableAnnotation {
            columns,
            step_nanos,
        }
    }

    /// Hierarchy-aware tie-breaking: when the two leading candidates are
    /// ancestor and descendant in the ontology (`location` vs `city`),
    /// prefer the more specific type unless the general one leads by a
    /// clear margin. Dictionary evidence for a parent type necessarily
    /// covers its children, so raw confidence favors the parent even
    /// when the child is the right answer.
    fn prefer_specific(&self, top_k: &mut [Candidate]) {
        const SPECIFICITY_MARGIN: f64 = 0.15;
        if top_k.len() < 2 {
            return;
        }
        let leader = top_k[0];
        if leader.ty.is_unknown() || leader.ty.index() >= self.ontology.len() {
            return;
        }
        for i in 1..top_k.len() {
            let challenger = top_k[i];
            if challenger.ty.is_unknown() || challenger.ty.index() >= self.ontology.len() {
                continue;
            }
            let challenger_is_descendant =
                self.ontology.is_a(challenger.ty, leader.ty) && challenger.ty != leader.ty;
            if challenger_is_descendant
                && challenger.confidence >= leader.confidence - SPECIFICITY_MARGIN
            {
                // Promote the specific type to the decision slot while
                // keeping the remainder in confidence order.
                top_k[0..=i].rotate_right(1);
                return;
            }
        }
    }

    fn best_so_far(&self, steps: &[(Step, StepScores)]) -> f64 {
        steps
            .iter()
            .map(|(_, s)| s.best_confidence())
            .fold(0.0, f64::max)
    }

    /// Blend global and local embedding scores with the per-type local
    /// weights `Wl` ("the weight of the local model increases over
    /// time", Figure 2).
    fn blend(
        &self,
        global: &StepScores,
        local: &StepScores,
        normalized_header: &str,
    ) -> StepScores {
        let mut types: Vec<TypeId> = global
            .candidates
            .iter()
            .chain(&local.candidates)
            .map(|c| c.ty)
            .collect();
        types.sort_unstable();
        types.dedup();
        let cands = types
            .into_iter()
            .map(|ty| {
                let wl = self.local.wl(ty);
                let wg = self.local.wg(ty, normalized_header);
                let g = global.confidence_for(ty);
                let l = local.confidence_for(ty);
                // Finetuning on a handful of customer examples skews the
                // local head toward the corrected classes, so its opinion
                // only enters the blend when it is *decisive*; otherwise
                // the (Wg-weighted) global model carries the type.
                const LOCAL_TRUST_FLOOR: f64 = 0.7;
                let local_term = if l >= LOCAL_TRUST_FLOOR { l } else { g * wg };
                Candidate {
                    ty,
                    confidence: (1.0 - wl) * wg * g + wl * local_term,
                }
            })
            .collect();
        StepScores::from_candidates(cands)
    }

    /// Explicit feedback: the user relabels column `col_idx` of `table`
    /// as `ty` (Figure 3 ①). Runs the full DPBD loop: infer LFs ②, mine
    /// the customer's table history for weak labels ③/④, extend the
    /// local training set, finetune the local model, and grow `Wl`.
    ///
    /// `history` is the customer's table corpus to mine; pass `None` to
    /// skip mining (LFs still registered, demo column still learned).
    pub fn feedback(
        &mut self,
        table: &Table,
        col_idx: usize,
        ty: TypeId,
        history: Option<&Corpus>,
    ) {
        let annotation = self.annotate(table);
        let neighbor_types: Vec<TypeId> = annotation
            .columns
            .iter()
            .filter(|c| c.col_idx != col_idx && !c.predicted.is_unknown())
            .map(|c| c.predicted)
            .collect();
        // The correction contradicts whatever the system predicted: the
        // global weight of that (wrong) type shrinks in this context.
        let previous = annotation.columns[col_idx].predicted;
        if previous != ty && !previous.is_unknown() {
            let header = tu_text::normalize_header(table.headers()[col_idx]);
            // Generic headers ("field_3") appear on unrelated columns in
            // other tables; discounting them there would be collateral
            // damage, so only informative header contexts are recorded.
            if !tu_dp::infer::is_generic_header(&header) {
                self.local.record_override(previous, &header);
            }
        }
        let column = table.column(col_idx).expect("column in range");

        // ② Infer labeling functions from the demonstration.
        let lfs = infer_lfs(
            &Demonstration {
                column,
                neighbor_types: &neighbor_types,
                ty,
            },
            &InferConfig::default(),
        );
        self.local.add_lfs(lfs);
        self.local.record_feedback(ty);

        // Demonstrated column itself becomes a training example.
        let neighbors: Vec<String> = table
            .headers()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != col_idx)
            .map(|(_, h)| (*h).to_owned())
            .collect();
        let mut examples = vec![(column.clone(), neighbors, ty)];

        // ③/④ Mine the customer's history with the full local LF bank.
        if let Some(history) = history {
            let mined = mine_weak_labels(history, &self.local.lfs, &MiningConfig::default());
            for m in mined {
                let at = &history.tables[m.table_idx];
                let col = at.table.column(m.col_idx).expect("mined column");
                let headers: Vec<String> = at
                    .table
                    .headers()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != m.col_idx)
                    .map(|(_, h)| (*h).to_owned())
                    .collect();
                examples.push((col.clone(), headers, m.label.ty));
            }
        }
        self.local.add_training(examples);
        self.refit_local();
    }

    /// Implicit feedback: the user left the remaining predictions as-is,
    /// so they count as approvals (§4.2). Adds every confidently
    /// predicted column to the local training set.
    pub fn implicit_approve(&mut self, table: &Table, annotation: &TableAnnotation) {
        let headers = table.headers();
        let mut examples = Vec::new();
        for col_ann in &annotation.columns {
            if col_ann.abstained() {
                continue;
            }
            let neighbors: Vec<String> = headers
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != col_ann.col_idx)
                .map(|(_, h)| (*h).to_owned())
                .collect();
            let column = table.column(col_ann.col_idx).expect("column in range");
            examples.push((column.clone(), neighbors, col_ann.predicted));
            self.local.record_feedback(col_ann.predicted);
        }
        if !examples.is_empty() {
            self.local.add_training(examples);
            self.refit_local();
        }
    }

    /// Finetune the local embedding model on all accumulated local
    /// training data.
    fn refit_local(&mut self) {
        if self.local.training.is_empty() {
            return;
        }
        let model = self
            .local
            .finetuned
            .get_or_insert_with(|| self.global.embedding.clone());
        let examples: Vec<(&tu_table::Column, Vec<&str>, TypeId)> = self
            .local
            .training
            .iter()
            .map(|(c, n, t)| (c, n.iter().map(String::as_str).collect(), *t))
            .collect();
        model.partial_fit(&examples, 6);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainingConfig;
    use crate::global::train_global;
    use tu_corpus::{generate_corpus, CorpusConfig};
    use tu_ontology::{builtin_id, builtin_ontology};
    use tu_table::Column;

    fn system() -> SigmaTyper {
        let o = builtin_ontology();
        let mut cfg = CorpusConfig::database_like(51, 60);
        cfg.ood_column_rate = 0.25;
        let corpus = generate_corpus(&o, &cfg);
        let gm = train_global(o, &corpus, &TrainingConfig::fast());
        SigmaTyper::new(Arc::new(gm), SigmaTyperConfig::default())
    }

    fn figure3_table() -> Table {
        Table::new(
            "employees",
            vec![
                Column::from_raw("Name", &["Han Phi", "Thomas Do", "Alexis Nan"]),
                Column::from_raw("Income", &["50000", "60000", "70000"]),
                Column::from_raw("Company", &["nytco", "Adyen", "Sigma"]),
                Column::from_raw("Cities", &["New York", "Amsterdam", "San Francisco"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn annotates_figure3_table() {
        let st = system();
        let o = st.ontology();
        let ann = st.annotate(&figure3_table());
        assert_eq!(ann.columns.len(), 4);
        // Clear headers must resolve correctly.
        assert_eq!(ann.columns[0].predicted, builtin_id(o, "name"));
        assert_eq!(ann.columns[1].predicted, builtin_id(o, "salary"));
        assert_eq!(ann.columns[3].predicted, builtin_id(o, "city"));
        // Header step ran for every column; timings recorded.
        assert!(ann.columns.iter().all(|c| c.steps_run[0] == Step::Header));
        assert!(ann.step_nanos[0] > 0);
    }

    #[test]
    fn cascade_skips_resolved_columns() {
        let st = system();
        let ann = st.annotate(&figure3_table());
        // "Income" is an exact alias → header step confidence 1.0 → later
        // steps must not run for it.
        let income = &ann.columns[1];
        assert_eq!(income.steps_run, vec![Step::Header]);
        assert_eq!(
            income.resolving_step(st.config().cascade_threshold),
            Some(Step::Header)
        );
    }

    #[test]
    fn headerless_column_falls_through_to_lookup() {
        let st = system();
        let o = st.ontology();
        let table = Table::new(
            "t",
            vec![Column::from_raw(
                "c_17",
                &["ada@x.com", "bob@y.org", "eve@z.net"],
            )],
        )
        .unwrap();
        let ann = st.annotate(&table);
        assert!(ann.columns[0].steps_run.contains(&Step::Lookup));
        assert_eq!(ann.columns[0].predicted, builtin_id(o, "email"));
    }

    #[test]
    fn feedback_adapts_predictions() {
        let mut st = system();
        let o = st.ontology().clone();
        let phone = builtin_id(&o, "phone number");
        // A customer whose "contact" columns hold bare 8-digit numbers —
        // initially mis-predicted (identifier-ish), per Fig. 1b.
        let mk = |seed: u64| {
            let vals: Vec<String> = (0..30)
                .map(|i| format!("{}", 20_000_000 + seed * 1000 + i * 137))
                .collect();
            Table::new(
                format!("contacts_{seed}"),
                vec![Column::from_raw("contact", &vals)],
            )
            .unwrap()
        };
        let before = st.annotate(&mk(1)).columns[0].predicted;
        assert_ne!(before, phone, "sanity: starts wrong");
        // Three explicit corrections.
        for s in 1..=3 {
            st.feedback(&mk(s), 0, phone, None);
        }
        let after = st.annotate(&mk(9)).columns[0].predicted;
        assert_eq!(after, phone, "system must adapt to the customer's context");
        assert!(st.local().wl(phone) > 0.5);
        assert!(!st.local().lfs.is_empty());
    }

    #[test]
    fn implicit_approval_grows_training() {
        let mut st = system();
        let table = figure3_table();
        let ann = st.annotate(&table);
        let before = st.local().training.len();
        st.implicit_approve(&table, &ann);
        assert!(st.local().training.len() > before);
        assert!(st.local().total_feedback() > 0);
    }

    #[test]
    fn custom_type_registration_and_learning() {
        let mut st = system();
        let gene = st.register_custom_type("gene id", ValueKind::Identifier, &["ensembl id"]);
        assert!(gene.index() >= st.global().ontology.len());
        // Teach it via feedback.
        let mk = |seed: u64| {
            let vals: Vec<String> = (0..25)
                .map(|i| format!("ENSG{:08}", seed * 100 + i))
                .collect();
            Table::new(
                format!("genes_{seed}"),
                vec![Column::from_raw("gene", &vals)],
            )
            .unwrap()
        };
        for s in 1..=3 {
            st.feedback(&mk(s), 0, gene, None);
        }
        let ann = st.annotate(&mk(7));
        assert_eq!(
            ann.columns[0].predicted, gene,
            "custom type must be learnable"
        );
    }

    #[test]
    fn ood_column_abstains() {
        let st = system();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let vals =
            tu_corpus::ood::generate_ood_column(&mut rng, tu_corpus::OodKind::GeneSequence, 30);
        let table = Table::new("t", vec![Column::new("sequence", vals)]).unwrap();
        let ann = st.annotate(&table);
        assert!(
            ann.columns[0].abstained() || ann.columns[0].confidence < 0.7,
            "OOD column should abstain or be unconfident: {:?} conf {}",
            ann.columns[0].predicted,
            ann.columns[0].confidence
        );
    }

    #[test]
    fn specific_type_beats_its_ancestor_on_close_votes() {
        let st = system();
        let o = st.ontology();
        let city = builtin_id(o, "city");
        let location = builtin_id(o, "location");
        let mut top = vec![
            Candidate {
                ty: location,
                confidence: 0.95,
            },
            Candidate {
                ty: city,
                confidence: 0.88,
            },
        ];
        st.prefer_specific(&mut top);
        assert_eq!(top[0].ty, city, "child within margin wins");
        // A clear margin keeps the general type.
        let mut top = vec![
            Candidate {
                ty: location,
                confidence: 0.95,
            },
            Candidate {
                ty: city,
                confidence: 0.5,
            },
        ];
        st.prefer_specific(&mut top);
        assert_eq!(top[0].ty, location);
        // Unrelated types never swap.
        let salary = builtin_id(o, "salary");
        let mut top = vec![
            Candidate {
                ty: location,
                confidence: 0.9,
            },
            Candidate {
                ty: salary,
                confidence: 0.89,
            },
        ];
        st.prefer_specific(&mut top);
        assert_eq!(top[0].ty, location);
    }

    #[test]
    fn tau_zero_never_abstains_on_candidates() {
        let mut st = system();
        st.config_mut().tau = 0.0;
        let ann = st.annotate(&figure3_table());
        assert!(ann.columns.iter().all(|c| !c.top_k.is_empty()));
    }
}
