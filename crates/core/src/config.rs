//! System configuration: thresholds, step weights, and sizes.

use crate::backend::EmbeddingBackendKind;
use crate::cache::StableHasher;
use crate::executor::ParallelismPolicy;
use crate::prediction::StepId;

/// SigmaTyper configuration (paper §4.3).
#[derive(Debug, Clone, Copy)]
pub struct SigmaTyperConfig {
    /// Cascade confidence threshold `c`: a later (slower) step runs for a
    /// column only while its best confidence so far is below `c`.
    pub cascade_threshold: f64,
    /// Abstention threshold τ: final predictions below τ become `unknown`
    /// ("we infer a parameter τ and threshold predictions that are below
    /// τ such that the precision of the system is high").
    pub tau: f64,
    /// How many ranked candidates to report per column (top-k).
    pub top_k: usize,
    /// Vote weight of the header-matching step.
    pub weight_header: f64,
    /// Vote weight of the value-lookup step.
    pub weight_lookup: f64,
    /// Vote weight of the table-embedding step.
    pub weight_embedding: f64,
    /// Scale applied to lookup hits that come from numeric-range LFs
    /// only — ranges are inherently ambiguous, so they must not clear the
    /// cascade threshold unassisted.
    pub range_lf_scale: f64,
    /// Values sampled per column in the lookup step.
    pub lookup_sample: usize,
    /// Ablation: run the header-matching step.
    pub enable_header: bool,
    /// Ablation: run the value-lookup step.
    pub enable_lookup: bool,
    /// Ablation: run the table-embedding step.
    pub enable_embedding: bool,
    /// When the [`CascadeExecutor`](crate::executor::CascadeExecutor)
    /// may run a step's pending columns in parallel (execution
    /// strategy only — proven output-invariant by the golden
    /// parallel-vs-sequential suite, and therefore **not** part of the
    /// cache fingerprint). A request may override it per call via
    /// [`RequestOptions::parallelism`](crate::request::RequestOptions::parallelism).
    pub parallelism: ParallelismPolicy,
    /// Worker budget for intra-table column chunks: the maximum number
    /// of scoped threads one table's step frontier may fan out to.
    /// `0` means "auto" (the machine's available parallelism). The
    /// [`AnnotationService`](crate::service::AnnotationService)
    /// overrides this per worker when splitting its shared budget, and
    /// a request may override it per call via
    /// [`RequestOptions::column_threads`](crate::request::RequestOptions::column_threads).
    ///
    /// Latency *budgets* are deliberately **not** configuration: they
    /// are per-request quantities
    /// ([`RequestOptions::budget_nanos`](crate::request::RequestOptions::budget_nanos)),
    /// which also keeps them out of the cache fingerprint — a budget
    /// changes which steps run, never what an executed step scores.
    pub column_threads: usize,
    /// Inference backend of the table-embedding step (see
    /// [`crate::backend`]). The default,
    /// [`ReferenceF32`](crate::backend::ReferenceF32), is bit-identical
    /// to the seed transcription; the others trade bits for speed.
    /// Unlike the execution-strategy fields this **is** fingerprinted
    /// (when non-default): approximate backends score differently, so
    /// their cache entries must never cross-serve. A request may
    /// override it per call via
    /// [`RequestOptions::embedding_backend`](crate::request::RequestOptions::embedding_backend).
    pub embedding_backend: EmbeddingBackendKind,
    /// Base sensitivity threshold for delta-aware recrawls: when an
    /// annotation request carries a base table
    /// ([`AnnotationRequest::with_base`](crate::request::AnnotationRequest::with_base)),
    /// a cacheable step reuses the base crawl's cached scores for a
    /// column whose [`movement`](tu_table::ColumnDelta::movement)
    /// stayed at or below this threshold scaled by the step's own
    /// [`sensitivity_factor`](crate::step::AnnotationStep::sensitivity_factor).
    /// `0.0` disables approximation entirely — any real change re-runs
    /// every step, so incremental recrawls are bit-identical to full
    /// recomputation. A request may override it per call via
    /// [`RequestOptions::delta_sensitivity`](crate::request::RequestOptions::delta_sensitivity).
    pub delta_sensitivity: f64,
}

impl SigmaTyperConfig {
    /// Default vote weight of a step: the three standard steps read
    /// their configured weights; every other step (including
    /// [`StepId::REGEX_ONLY`] and custom steps) defaults to 1.0. The
    /// cascade builder can override any step's weight per instance.
    #[must_use]
    pub fn step_weight(&self, step: StepId) -> f64 {
        match step {
            StepId::HEADER => self.weight_header,
            StepId::LOOKUP => self.weight_lookup,
            StepId::EMBEDDING => self.weight_embedding,
            _ => 1.0,
        }
    }

    /// Hash every step-relevant field into a column fingerprint (see
    /// [`crate::cache`]). All fields are included — steps receive the
    /// whole config through `StepContext`, so any field may influence a
    /// step's scores. Keeping this exhaustive is a correctness
    /// obligation: a config field that steps can read but fingerprints
    /// ignore would let the cache serve stale scores after a config
    /// change — hence the full destructuring below, which turns a
    /// forgotten new field into a compile error. (The vote weights are
    /// included too even though they act after the cascade: a spurious
    /// mismatch only costs a cache miss.)
    ///
    /// The execution-strategy fields (`parallelism`, `column_threads`)
    /// are the one deliberate exception: the golden equivalence suite
    /// proves column-parallel execution bit-identical to sequential,
    /// so hashing them would only split the cache between workers that
    /// carry different budget shares (and cold-start every policy
    /// flip) without ever guarding against a real divergence. Steps
    /// must not let these fields influence their scores.
    pub fn fingerprint_into(&self, h: &mut StableHasher) {
        let SigmaTyperConfig {
            cascade_threshold,
            tau,
            top_k,
            weight_header,
            weight_lookup,
            weight_embedding,
            range_lf_scale,
            lookup_sample,
            enable_header,
            enable_lookup,
            enable_embedding,
            // Execution strategy: output-invariant, deliberately not
            // fingerprinted (see above).
            parallelism: _,
            column_threads: _,
            embedding_backend,
            // Deliberately not fingerprinted: the sensitivity gate only
            // decides whether a step *re-runs* or *reuses the base
            // crawl's entry* — reused scores are never inserted under
            // the new fingerprint (the executor suppresses those
            // writes), so no cached entry ever depends on this value.
            // Hashing it would cold-start the cache on every threshold
            // tune without guarding anything.
            delta_sensitivity: _,
        } = *self;
        h.write_f64(cascade_threshold);
        h.write_f64(tau);
        h.write_usize(top_k);
        h.write_f64(weight_header);
        h.write_f64(weight_lookup);
        h.write_f64(weight_embedding);
        h.write_f64(range_lf_scale);
        h.write_usize(lookup_sample);
        h.write_u8(u8::from(enable_header));
        h.write_u8(u8::from(enable_lookup));
        h.write_u8(u8::from(enable_embedding));
        // The embedding backend is hashed only when non-default: the
        // default (`ReferenceF32`) is fingerprinted as *absence* so
        // seed-era fingerprints — and any persisted disk-cache tier
        // written before backends existed — remain valid verbatim.
        // Approximate backends score differently, so each non-default
        // backend contributes its own tag and never cross-serves.
        if embedding_backend != EmbeddingBackendKind::ReferenceF32 {
            h.write_u8(embedding_backend.fingerprint_tag());
        }
    }
}

impl Default for SigmaTyperConfig {
    fn default() -> Self {
        SigmaTyperConfig {
            cascade_threshold: 0.82,
            tau: 0.4,
            top_k: 3,
            weight_header: 1.0,
            weight_lookup: 1.0,
            weight_embedding: 1.2,
            range_lf_scale: 0.55,
            lookup_sample: 40,
            enable_header: true,
            enable_lookup: true,
            enable_embedding: true,
            parallelism: ParallelismPolicy::default(),
            column_threads: 0,
            embedding_backend: EmbeddingBackendKind::ReferenceF32,
            delta_sensitivity: 0.05,
        }
    }
}

/// Training-time configuration for the global model.
#[derive(Debug, Clone, Copy)]
pub struct TrainingConfig {
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// Skip-gram epochs.
    pub embed_epochs: usize,
    /// MLP hidden width.
    pub hidden: usize,
    /// MLP epochs.
    pub epochs: usize,
    /// Fraction of training columns held out for temperature calibration.
    pub calibration_fraction: f64,
    /// Seed for all training randomness.
    pub seed: u64,
    /// Spare MLP output classes reserved for customer-registered custom
    /// types (learned later via local finetuning).
    pub reserve_classes: usize,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            embed_dim: 32,
            embed_epochs: 6,
            hidden: 64,
            epochs: 25,
            calibration_fraction: 0.15,
            seed: 0x516,
            reserve_classes: 8,
        }
    }
}

impl TrainingConfig {
    /// A small configuration for fast unit tests.
    #[must_use]
    pub fn fast() -> Self {
        TrainingConfig {
            embed_dim: 16,
            embed_epochs: 2,
            hidden: 24,
            epochs: 8,
            calibration_fraction: 0.15,
            seed: 0x516,
            reserve_classes: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let c = SigmaTyperConfig::default();
        assert!(c.cascade_threshold > c.tau);
        assert!(c.top_k >= 1);
        assert!(c.range_lf_scale < c.cascade_threshold);
        // Strictly below 1.0: a fully rewritten column (movement ≥ 1)
        // must never slip through the default reuse gate.
        assert!(c.delta_sensitivity >= 0.0 && c.delta_sensitivity < 1.0);
        let t = TrainingConfig::default();
        assert!(t.calibration_fraction > 0.0 && t.calibration_fraction < 1.0);
        assert!(TrainingConfig::fast().epochs < t.epochs);
    }

    #[test]
    fn fingerprint_covers_every_field() {
        let finish = |c: &SigmaTyperConfig| {
            let mut h = StableHasher::new();
            c.fingerprint_into(&mut h);
            h.finish128()
        };
        let base = SigmaTyperConfig::default();
        assert_eq!(finish(&base), finish(&base), "deterministic");
        // Every field perturbation must move the fingerprint.
        let variants = [
            SigmaTyperConfig {
                cascade_threshold: 0.5,
                ..base
            },
            SigmaTyperConfig { tau: 0.9, ..base },
            SigmaTyperConfig { top_k: 7, ..base },
            SigmaTyperConfig {
                weight_header: 0.3,
                ..base
            },
            SigmaTyperConfig {
                weight_lookup: 0.3,
                ..base
            },
            SigmaTyperConfig {
                weight_embedding: 0.3,
                ..base
            },
            SigmaTyperConfig {
                range_lf_scale: 0.1,
                ..base
            },
            SigmaTyperConfig {
                lookup_sample: 3,
                ..base
            },
            SigmaTyperConfig {
                enable_header: false,
                ..base
            },
            SigmaTyperConfig {
                enable_lookup: false,
                ..base
            },
            SigmaTyperConfig {
                enable_embedding: false,
                ..base
            },
            SigmaTyperConfig {
                embedding_backend: EmbeddingBackendKind::QuantizedI8,
                ..base
            },
            SigmaTyperConfig {
                embedding_backend: EmbeddingBackendKind::BlockedSimd,
                ..base
            },
            SigmaTyperConfig {
                embedding_backend: EmbeddingBackendKind::BatchedFrontier,
                ..base
            },
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(finish(&base), finish(v), "variant {i} did not move");
        }
        // Distinct non-default backends must land on distinct
        // fingerprints — their cached scores may legitimately differ.
        assert_ne!(finish(&variants[11]), finish(&variants[12]));
        assert_ne!(finish(&variants[11]), finish(&variants[13]));
        assert_ne!(finish(&variants[12]), finish(&variants[13]));
        // Execution strategy must NOT move the fingerprint: parallel
        // and sequential runs are bit-identical (golden suite), and
        // service workers carrying different budget shares must keep
        // hitting one shared cache.
        let strategies = [
            SigmaTyperConfig {
                parallelism: ParallelismPolicy::Off,
                ..base
            },
            SigmaTyperConfig {
                parallelism: ParallelismPolicy::FixedChunk { columns: 2 },
                ..base
            },
            SigmaTyperConfig {
                column_threads: 7,
                ..base
            },
            // The delta-reuse sensitivity gates reuse of *base-crawl*
            // entries; it never changes what an executed step scores
            // or what gets inserted, so tuning it must not cold-start
            // the cache.
            SigmaTyperConfig {
                delta_sensitivity: 0.4,
                ..base
            },
        ];
        for (i, v) in strategies.iter().enumerate() {
            assert_eq!(
                finish(&base),
                finish(v),
                "execution-strategy variant {i} moved the fingerprint"
            );
        }
    }

    /// `ReferenceF32` (the default) must keep seed-era fingerprints
    /// byte-stable: the backend field is hashed only when non-default,
    /// so configs written before backends existed — including every
    /// entry in a persisted disk-cache tier — hash to exactly the same
    /// value today. This replays the seed-era write sequence by hand
    /// and demands equality, not merely determinism.
    #[test]
    fn reference_backend_keeps_seed_era_fingerprints() {
        let base = SigmaTyperConfig::default();
        assert_eq!(base.embedding_backend, EmbeddingBackendKind::ReferenceF32);
        let mut h = StableHasher::new();
        base.fingerprint_into(&mut h);
        let today = h.finish128();

        let mut seed_era = StableHasher::new();
        seed_era.write_f64(base.cascade_threshold);
        seed_era.write_f64(base.tau);
        seed_era.write_usize(base.top_k);
        seed_era.write_f64(base.weight_header);
        seed_era.write_f64(base.weight_lookup);
        seed_era.write_f64(base.weight_embedding);
        seed_era.write_f64(base.range_lf_scale);
        seed_era.write_usize(base.lookup_sample);
        seed_era.write_u8(u8::from(base.enable_header));
        seed_era.write_u8(u8::from(base.enable_lookup));
        seed_era.write_u8(u8::from(base.enable_embedding));
        assert_eq!(
            today,
            seed_era.finish128(),
            "default-backend fingerprint diverged from the seed-era scheme"
        );
    }

    #[test]
    fn step_weights_resolve_per_step() {
        let c = SigmaTyperConfig {
            weight_header: 0.5,
            weight_lookup: 2.0,
            weight_embedding: 3.0,
            ..SigmaTyperConfig::default()
        };
        assert_eq!(c.step_weight(StepId::HEADER), 0.5);
        assert_eq!(c.step_weight(StepId::LOOKUP), 2.0);
        assert_eq!(c.step_weight(StepId::EMBEDDING), 3.0);
        assert_eq!(c.step_weight(StepId::REGEX_ONLY), 1.0);
        assert_eq!(c.step_weight(StepId::custom(0)), 1.0);
    }
}
