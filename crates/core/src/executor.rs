//! The cascade execution layer: [`CascadeExecutor`] runs a
//! [`Cascade`]'s steps over a table with an explicit pending-column
//! **frontier**, per-column [`StepCache`](crate::cache::StepCache)
//! consults, and optional column-parallel execution.
//!
//! # Execution model
//!
//! For each configured step, in cascade order:
//!
//! 1. **Frontier.** Every column is checked against the step's
//!    [`skip`](crate::step::AnnotationStep::skip) predicate (by default
//!    the paper's confidence-threshold early exit, §4.3). For
//!    [`cacheable`](crate::step::AnnotationStep::cacheable) steps the
//!    cache is consulted per surviving column; hits enter the trace
//!    exactly like runs. What remains — not skipped, not cached — is
//!    the step's *pending-column frontier*.
//! 2. **Chunking.** The [`ParallelismPolicy`] decides how the frontier
//!    is split into chunks, each executed with one
//!    [`run_batch`](crate::step::AnnotationStep::run_batch) call.
//!    Sequential execution is the single-chunk special case, so the
//!    batch-amortized step implementations serve both paths.
//! 3. **Workers.** When more than one chunk is planned and the worker
//!    budget allows, chunks are distributed over
//!    [`std::thread::scope`] threads. Steps are deterministic and
//!    read-only and every chunk's results are written back by column
//!    index, so scheduling can never change the output — the golden
//!    suite (`tests/golden_cascade.rs`) proves column-parallel
//!    execution bit-identical to sequential for fresh, ablated, and
//!    adaptation-heavy customers, cached and uncached.
//!
//! Per step, the executor reports [`StepTiming`] telemetry including
//! the chunk count and the summed in-chunk nanoseconds
//! ([`StepTiming::parallel_nanos`]), the inputs the cost-aware-ordering
//! roadmap item needs.
//!
//! Setting the `SIGMATYPER_PARALLEL_COLUMNS` environment variable to a
//! non-`0` value forces column-parallel execution wherever a frontier
//! has at least two columns, regardless of policy or detected core
//! count — CI uses this to exercise the parallel path on machines
//! where the default heuristics would pick sequential.

use crate::cache::{column_fingerprints, CacheContext, CacheKey, ColumnFingerprint};
use crate::cascade::{Cascade, CascadeTrace};
use crate::config::SigmaTyperConfig;
use crate::global::GlobalModel;
use crate::local::LocalModel;
use crate::prediction::{StepId, StepScores, StepTiming};
use crate::request::{BudgetContext, BudgetLedger, DegradationPolicy, SkipReason, SkippedStep};
use crate::step::{AnnotationStep, ColumnState, StepContext};
use std::sync::OnceLock;
use std::time::Instant;
use tu_ontology::TypeId;
use tu_table::Table;

/// When the executor may run a step's pending-column frontier in
/// parallel. Execution strategy only: every choice produces
/// bit-identical output (the golden suite proves it), so this is a
/// latency/throughput knob, never a correctness one — and it is
/// deliberately **excluded** from the cache fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelismPolicy {
    /// Never parallelize within a table: every frontier runs as one
    /// sequential [`run_batch`](crate::step::AnnotationStep::run_batch)
    /// call.
    Off,
    /// Parallelize a step only when its frontier has at least
    /// `min_columns` pending columns (and the worker budget allows),
    /// splitting it evenly across the budget. Narrow tables — the
    /// common case — stay on the zero-overhead sequential path.
    PerTableThreshold {
        /// Minimum frontier width before threads are worth spawning.
        min_columns: usize,
    },
    /// Always split the frontier into chunks of `columns` columns;
    /// chunks run on up to the budgeted number of workers (with a
    /// budget of 1 they run sequentially, which still exercises the
    /// chunked batch path). Mostly a testing/tuning policy.
    FixedChunk {
        /// Columns per [`run_batch`](crate::step::AnnotationStep::run_batch)
        /// call.
        columns: usize,
    },
}

impl Default for ParallelismPolicy {
    /// The production default: parallelize wide-table frontiers (≥ 12
    /// pending columns), leave narrow ones sequential.
    fn default() -> Self {
        ParallelismPolicy::PerTableThreshold { min_columns: 12 }
    }
}

/// `true` when `SIGMATYPER_PARALLEL_COLUMNS` is set to a non-empty,
/// non-`0` value: every frontier of two or more columns is then
/// chunked and run on at least two workers, whatever the policy says.
#[must_use]
pub fn forced_column_parallelism() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var_os("SIGMATYPER_PARALLEL_COLUMNS").is_some_and(|v| v != "0" && !v.is_empty())
    })
}

/// Inputs for the delta-aware recrawl path of
/// [`CascadeExecutor::run_budgeted`]: precomputed fingerprints for the
/// new crawl (typically derived through fingerprint delta chains, see
/// [`column_fingerprints_chained`](crate::cache::column_fingerprints_chained)),
/// the base crawl's fingerprints, and how far each column's signal
/// moved.
///
/// With a delta context installed, a cacheable step that misses the
/// exact cache for a column whose movement is at or below
/// `sensitivity ×`
/// [`sensitivity_factor`](crate::step::AnnotationStep::sensitivity_factor)
/// reuses the *base* crawl's cached scores for that column instead of
/// re-running — entered into the trace exactly like a cache hit, and
/// counted in [`StepTiming::delta_reused`]. Reused scores are **never
/// inserted** under the new fingerprint, and once any reuse fires, the
/// executor stops inserting later steps' fresh results too: those ran
/// under an approximated cross-column context, and the cache contract
/// ("equal fingerprints ⇒ bit-identical scores") only admits entries
/// from unapproximated runs.
#[derive(Debug, Clone, Copy)]
pub struct DeltaContext<'a> {
    /// Fingerprints of the new crawl's columns — must be bit-identical
    /// to what
    /// [`column_fingerprints`]
    /// would compute for the table (delta chains guarantee this), so
    /// exact cache hits keep working unchanged.
    pub fingerprints: &'a [ColumnFingerprint],
    /// Fingerprints of the base crawl's columns, for reuse lookups.
    pub base_fingerprints: &'a [ColumnFingerprint],
    /// Per-column [`movement`](tu_table::ColumnDelta::movement), in
    /// column order of the new crawl.
    pub movements: &'a [f64],
    /// Base sensitivity threshold; `0.0` disables reuse entirely
    /// (bit-identical to a from-scratch run).
    pub sensitivity: f64,
}

/// Runs a [`Cascade`] over tables: frontier tracking, cache consults,
/// and (policy-permitting) column-parallel step execution.
///
/// The executor is cheap to construct — the
/// [`AnnotationService`](crate::service::AnnotationService) builds one
/// per worker with that worker's share of the thread budget, and
/// [`SigmaTyper::annotate`](crate::system::SigmaTyper::annotate)
/// builds one per call from the configuration.
#[derive(Debug, Clone, Copy)]
pub struct CascadeExecutor {
    policy: ParallelismPolicy,
    threads: usize,
}

impl CascadeExecutor {
    /// An executor with an explicit policy and worker budget for
    /// intra-table column chunks (clamped to at least 1).
    #[must_use]
    pub fn new(policy: ParallelismPolicy, threads: usize) -> Self {
        CascadeExecutor {
            policy,
            threads: threads.max(1),
        }
    }

    /// An executor derived from a configuration:
    /// [`SigmaTyperConfig::parallelism`] plus the
    /// [`SigmaTyperConfig::column_threads`] budget (`0` = the
    /// machine's available parallelism, probed once per process —
    /// [`SigmaTyper::annotate`](crate::system::SigmaTyper::annotate)
    /// builds an executor per call, and a per-table syscall on the
    /// serving hot path would be pure waste for a value that is
    /// static in practice).
    #[must_use]
    pub fn from_config(config: &SigmaTyperConfig) -> Self {
        let threads = if config.column_threads == 0 {
            static AUTO: OnceLock<usize> = OnceLock::new();
            *AUTO.get_or_init(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
            })
        } else {
            config.column_threads
        };
        CascadeExecutor::new(config.parallelism, threads)
    }

    /// The configured parallelism policy.
    #[must_use]
    pub fn policy(&self) -> ParallelismPolicy {
        self.policy
    }

    /// The worker budget for intra-table column chunks.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Plan the execution of one frontier: `(chunk_size, workers)`.
    /// `workers == 1` means run the chunks inline on the caller's
    /// thread (no spawn); `chunk_size` is always at least 1.
    fn plan(&self, frontier: usize) -> (usize, usize) {
        self.plan_with(frontier, forced_column_parallelism())
    }

    /// [`plan`](Self::plan) with the forced-parallelism flag made
    /// explicit, so the planning rules are unit-testable regardless of
    /// the process environment.
    fn plan_with(&self, frontier: usize, forced: bool) -> (usize, usize) {
        debug_assert!(frontier > 0, "empty frontiers are not planned");
        let budget = self.threads.max(1);
        let mut chunk_size = match self.policy {
            ParallelismPolicy::Off => frontier,
            ParallelismPolicy::PerTableThreshold { min_columns } => {
                if frontier >= min_columns.max(1) && budget >= 2 {
                    frontier.div_ceil(budget.min(frontier))
                } else {
                    frontier
                }
            }
            ParallelismPolicy::FixedChunk { columns } => columns.clamp(1, frontier),
        };
        let mut worker_cap = budget;
        if forced && frontier >= 2 {
            // Force at least two chunks on at least two workers so the
            // parallel path is exercised even on single-core machines.
            worker_cap = budget.max(2);
            if chunk_size >= frontier {
                chunk_size = frontier.div_ceil(worker_cap.min(frontier));
            }
        }
        let n_chunks = frontier.div_ceil(chunk_size);
        (chunk_size, n_chunks.min(worker_cap))
    }

    /// Run every configured step of `cascade` over every column of
    /// `table`: the frontier loop described in the [module
    /// docs](self). Returns the per-column `(step, scores)` traces in
    /// execution order plus one [`StepTiming`] per configured step.
    ///
    /// Unbudgeted convenience over
    /// [`run_budgeted`](CascadeExecutor::run_budgeted) — no ledger, no
    /// degradation, every step runs.
    #[must_use]
    pub fn run(
        &self,
        cascade: &Cascade,
        table: &Table,
        global: &GlobalModel,
        local: &LocalModel,
        config: &SigmaTyperConfig,
        cache: Option<CacheContext<'_>>,
    ) -> CascadeTrace {
        self.run_budgeted(cascade, table, global, local, config, cache, None, None)
            .trace
    }

    /// [`run`](CascadeExecutor::run) under an optional
    /// [`BudgetContext`]: after every executed step the ledger is
    /// charged with the larger of the step's wall-clock and summed
    /// in-chunk nanoseconds, and — when the policy allows degradation
    /// — steps are dropped or truncated as described in
    /// [`crate::request`]. With `budget == None` (or a
    /// [`Strict`](crate::request::DegradationPolicy::Strict) policy)
    /// the walk is identical to the unbudgeted one, which is what
    /// keeps plain `annotate` calls bit-identical to default requests.
    ///
    /// An optional [`DeltaContext`] engages the delta-aware recrawl
    /// path (see its docs): precomputed fingerprints replace the
    /// per-run rehash, and sufficiently still columns reuse the base
    /// crawl's cached scores. With `delta == None` — or a sensitivity
    /// of 0 — the walk is bit-identical to a from-scratch run.
    #[must_use]
    #[allow(clippy::too_many_arguments)] // run()'s signature + the budget and delta contexts
    pub fn run_budgeted(
        &self,
        cascade: &Cascade,
        table: &Table,
        global: &GlobalModel,
        local: &LocalModel,
        config: &SigmaTyperConfig,
        cache: Option<CacheContext<'_>>,
        budget: Option<BudgetContext<'_>>,
        delta: Option<DeltaContext<'_>>,
    ) -> BudgetedTrace {
        let n = table.n_cols();
        let normalized: Vec<String> = table
            .headers()
            .iter()
            .map(|h| tu_text::normalize_header(h))
            .collect();
        // The delta path only matters with a cache to reuse from, and
        // its slices must cover every column.
        let delta = delta.filter(|d| {
            cache.is_some()
                && d.fingerprints.len() == n
                && d.base_fingerprints.len() == n
                && d.movements.len() == n
        });
        // One pass over the table's cells, shared by every step — or,
        // on the delta path, the chained fingerprints computed by the
        // caller from retained hash states (bit-identical, O(changed
        // cells) instead of O(cells)).
        let fingerprints: Option<Vec<ColumnFingerprint>> = cache.map(|cc| match delta {
            Some(d) => d.fingerprints.to_vec(),
            None => column_fingerprints(table, &cascade.step_ids(), config, cc.epoch),
        });
        let mut per_column: Vec<Vec<(StepId, StepScores)>> = vec![Vec::new(); n];
        let mut timings = Vec::with_capacity(cascade.len());
        let mut skipped: Vec<SkippedStep> = Vec::new();
        let mut charged_nanos = 0u64;
        let mut total_delta_reused = 0usize;
        // Once any step reused base-crawl scores, later steps run under
        // an approximated cross-column context: their fresh results are
        // real for this response but must not be inserted under the new
        // fingerprint (the cache admits only unapproximated runs).
        let mut tainted = false;
        // Degradation engages only under a non-Strict budget context;
        // Strict charges the ledger but never drops.
        let degrade = budget.filter(|b| b.policy != DegradationPolicy::Strict);

        for step in cascade.steps() {
            let t0 = Instant::now();
            // Tentative neighbor types from the best candidates of the
            // steps executed so far, and per-column state (recomputed
            // once per step, so every step sees the freshest
            // cross-column context).
            let tentative: Vec<TypeId> = per_column.iter().map(|steps| best_type(steps)).collect();
            let states: Vec<ColumnState> = per_column
                .iter()
                .enumerate()
                .map(|(ci, steps)| ColumnState {
                    best_so_far: best_so_far(steps),
                    fingerprint: fingerprints.as_ref().map(|f| f[ci]),
                })
                .collect();
            let ctx_for = |ci: usize| StepContext {
                table,
                col_idx: ci,
                normalized_headers: &normalized,
                tentative: &tentative,
                best_so_far: states[ci].best_so_far,
                global,
                local,
                config,
                fingerprint: states[ci].fingerprint,
                column_states: &states,
            };

            // Degradation gate 1: an exhausted ledger drops the whole
            // remaining tail — the step is not run, not cached, not
            // consulted; only its would-be frontier is counted for the
            // report. Dropped steps keep their timing record (stable
            // one-record-per-step schema) with zero columns/chunks.
            if let Some(b) = degrade {
                if b.ledger.exhausted() {
                    let pending = states
                        .iter()
                        .enumerate()
                        .filter(|(ci, _)| !step.skip(&ctx_for(*ci)))
                        .count();
                    if pending > 0 {
                        skipped.push(SkippedStep {
                            step: step.id(),
                            name: step.name().to_owned(),
                            reason: SkipReason::BudgetExhausted,
                            pending,
                            ran: 0,
                        });
                    }
                    timings.push(StepTiming {
                        step: step.id(),
                        name: step.name().to_owned(),
                        nanos: t0.elapsed().as_nanos(),
                        columns: 0,
                        cache_hits: 0,
                        cache_misses: 0,
                        cache_inserts: 0,
                        chunks: 0,
                        parallel_nanos: 0,
                        delta_reused: 0,
                    });
                    continue;
                }
            }

            // Phase 1: build the pending-column frontier — skip gates
            // first, then (for cacheable steps) the exact cache, then
            // the delta-reuse gate: an exact miss on a column whose
            // signal moved less than the step's sensitivity threshold
            // is answered from the *base* crawl's entry instead of
            // re-running. At sensitivity 0 the threshold is 0 and any
            // real change has positive movement, so reuse never fires
            // and the walk stays bit-identical to a from-scratch run.
            let step_cache = cache.filter(|_| step.cacheable());
            let reuse_threshold = delta
                .map(|d| d.sensitivity * step.sensitivity_factor())
                .unwrap_or(0.0);
            let (mut hits, mut misses) = (0usize, 0usize);
            let mut delta_reused = 0usize;
            let mut cached_scores: Vec<(usize, StepScores)> = Vec::new();
            let mut frontier: Vec<usize> = Vec::new();
            for (ci, state) in states.iter().enumerate() {
                if step.skip(&ctx_for(ci)) {
                    continue;
                }
                if let (Some(cc), Some(fp)) = (step_cache, state.fingerprint) {
                    let key = CacheKey::for_step(fp, step.id());
                    if let Some(scores) = cc.cache.get(&key) {
                        hits += 1;
                        cached_scores.push((ci, scores));
                        continue;
                    }
                    misses += 1;
                    if let Some(d) = delta {
                        if reuse_threshold > 0.0 && d.movements[ci] <= reuse_threshold {
                            let base_key = CacheKey::for_step(d.base_fingerprints[ci], step.id());
                            if let Some(scores) = cc.cache.get(&base_key) {
                                delta_reused += 1;
                                cached_scores.push((ci, scores));
                                continue;
                            }
                        }
                    }
                }
                frontier.push(ci);
            }

            // Degradation gate 2: predictive. When the cost model has
            // an estimate for this step and it says the frontier no
            // longer fits the remaining budget, drop the step
            // (DropTailSteps) or truncate the frontier to the prefix
            // that fits (BestEffort). Cache hits gathered above are
            // kept either way — they are real results at memo cost.
            if let Some(b) = degrade {
                if !frontier.is_empty() {
                    let remaining = b.ledger.remaining().unwrap_or(u64::MAX);
                    let estimate = b.cost.and_then(|c| c.estimate(step.id()));
                    if let Some(est) = estimate {
                        let predicted = est.nanos_per_column * frontier.len() as f64;
                        if predicted > remaining as f64 {
                            let fits = match b.policy {
                                DegradationPolicy::BestEffort if est.nanos_per_column > 0.0 => {
                                    ((remaining as f64 / est.nanos_per_column) as usize)
                                        .min(frontier.len())
                                }
                                _ => 0,
                            };
                            skipped.push(SkippedStep {
                                step: step.id(),
                                name: step.name().to_owned(),
                                reason: if fits > 0 {
                                    SkipReason::FrontierTruncated
                                } else {
                                    SkipReason::PredictedOverBudget
                                },
                                pending: frontier.len(),
                                ran: fits,
                            });
                            frontier.truncate(fits);
                        }
                    }
                }
            }

            // Phase 2: run the uncached frontier in chunks, inline or
            // column-parallel. Under BestEffort the ledger is charged
            // *between chunks* too, so an over-budget frontier stops
            // early instead of finishing (ROADMAP 5b) — the other
            // policies never interrupt mid-step (DropTailSteps drops
            // whole steps; Strict never degrades).
            let interrupt = degrade
                .filter(|b| b.policy == DegradationPolicy::BestEffort)
                .map(|b| b.ledger);
            let run = self.run_frontier(step.as_ref(), &frontier, &ctx_for, interrupt);

            // A mid-step stop left part of the frontier unrun: account
            // it as a truncation. When the predictive gate already
            // recorded one for this step, tighten its `ran` count;
            // otherwise this is a fresh truncation event.
            if run.pairs.len() < frontier.len() {
                let completed = run.pairs.len();
                match skipped.last_mut() {
                    Some(last) if last.step == step.id() => last.ran = completed,
                    _ => skipped.push(SkippedStep {
                        step: step.id(),
                        name: step.name().to_owned(),
                        reason: SkipReason::FrontierTruncated,
                        pending: frontier.len(),
                        ran: completed,
                    }),
                }
            }

            // Phase 3: write back — cache inserts, then the trace.
            // Each column gains at most one entry per step, so the
            // write-back order cannot influence later steps. Inserts
            // are suppressed once an *earlier* step reused base-crawl
            // scores: this step's frontier ran under an approximated
            // context, and a cached entry must only ever come from an
            // unapproximated run. (Reuse at this step taints later
            // steps, not this one — the per-column context above was
            // computed at step start, before any of this step's
            // results existed.)
            let mut inserts = 0usize;
            if let Some(cc) = step_cache.filter(|_| !tainted) {
                for (ci, scores) in &run.pairs {
                    if let Some(fp) = states[*ci].fingerprint {
                        // Epoch-tagged insert: persistent backends
                        // record which epoch produced the entry so
                        // compaction can drop adapted-away epochs.
                        cc.cache.insert_with_epoch(
                            CacheKey::for_step(fp, step.id()),
                            scores.clone(),
                            cc.epoch,
                        );
                        inserts += 1;
                    }
                }
            }
            tainted |= delta_reused > 0;
            total_delta_reused += delta_reused;
            let columns = run.pairs.len();
            for (ci, scores) in cached_scores {
                per_column[ci].push((step.id(), scores));
            }
            for (ci, scores) in run.pairs {
                per_column[ci].push((step.id(), scores));
            }
            let timing = StepTiming {
                step: step.id(),
                name: step.name().to_owned(),
                nanos: t0.elapsed().as_nanos(),
                columns,
                cache_hits: hits,
                cache_misses: misses,
                cache_inserts: inserts,
                chunks: run.chunks_run,
                parallel_nanos: run.busy_nanos,
                delta_reused,
            };
            if let Some(b) = budget {
                // Charge the larger of wall-clock and summed in-chunk
                // time: column parallelism must not make a step look
                // cheaper than the CPU it burned. In-chunk charges
                // already on the ledger (BestEffort's mid-step
                // re-checks) are netted out so the step's total charge
                // is identical to the one-shot accounting.
                let total = saturating_u64(timing.nanos.max(timing.parallel_nanos));
                b.ledger.charge(total.saturating_sub(run.charged_nanos));
                charged_nanos = charged_nanos.saturating_add(total);
            }
            timings.push(timing);
        }
        BudgetedTrace {
            trace: (per_column, timings),
            skipped,
            charged_nanos,
            delta_reused: total_delta_reused,
        }
    }

    /// Execute one step over its frontier, optionally re-checking an
    /// interrupt ledger **between chunks**.
    ///
    /// With `interrupt == None` (Strict, DropTailSteps, unbudgeted)
    /// every planned chunk runs — identical to the historical one-shot
    /// behavior. With an interrupt ledger (BestEffort), each worker
    /// charges its chunk's busy nanoseconds as it finishes and stops
    /// before its *next* chunk once the ledger is exhausted — the
    /// first chunk of every share always runs, so forward progress is
    /// guaranteed even on a born-exhausted ledger. Results carry their
    /// column index, so a mid-step stop simply leaves the unrun
    /// columns without this step's vote (they abstain or fall back,
    /// never fabricate).
    fn run_frontier<'a>(
        &self,
        step: &dyn AnnotationStep,
        frontier: &[usize],
        ctx_for: &(dyn Fn(usize) -> StepContext<'a> + Sync),
        interrupt: Option<&BudgetLedger>,
    ) -> FrontierRun {
        if frontier.is_empty() {
            return FrontierRun::default();
        }
        let (chunk_size, workers) = self.plan(frontier.len());
        let chunks: Vec<&[usize]> = frontier.chunks(chunk_size).collect();
        // Table-level setup, computed once per (step, table) and
        // shared by reference across every chunk — including chunks on
        // other worker threads. Steps that return None fall back to
        // plain run_batch (which may amortize per call, but re-pays
        // per chunk).
        let setup = step.prepare(&ctx_for(frontier[0]));
        let run_chunk = |chunk: &[usize]| -> (Vec<StepScores>, u128) {
            let t0 = Instant::now();
            let ctx = ctx_for(chunk[0]);
            let scores = match &setup {
                Some(setup) => step.run_prepared(&ctx, chunk, setup),
                None => step.run_batch(&ctx, chunk),
            };
            let busy = t0.elapsed().as_nanos();
            assert_eq!(
                scores.len(),
                chunk.len(),
                "step '{}': run_batch must return one StepScores per column",
                step.name()
            );
            (scores, busy)
        };
        // One worker's share of the chunks, run sequentially with the
        // mid-step re-check between its own chunks.
        let run_share = |worker_chunks: &[&[usize]]| -> FrontierRun {
            let mut share = FrontierRun::default();
            for (k, chunk) in worker_chunks.iter().enumerate() {
                if k > 0 && interrupt.is_some_and(BudgetLedger::exhausted) {
                    break;
                }
                let (scores, nanos) = run_chunk(chunk);
                share.busy_nanos += nanos;
                share.chunks_run += 1;
                if let Some(ledger) = interrupt {
                    let charge = saturating_u64(nanos);
                    ledger.charge(charge);
                    share.charged_nanos = share.charged_nanos.saturating_add(charge);
                }
                share.pairs.extend(chunk.iter().copied().zip(scores));
            }
            share
        };
        if workers <= 1 {
            // Inline: still one run_batch call per chunk, so a
            // FixedChunk policy exercises the batch path even with a
            // budget of one.
            return run_share(&chunks);
        }
        // Parallel: contiguous runs of chunks per worker, results
        // rejoined in frontier order — worker scheduling can never
        // change *computed* output, only the wall clock (and, under an
        // interrupt ledger, where each share stops). The first
        // worker's share runs inline on the calling thread (which
        // would otherwise just block in the scope join), so a budget
        // of W occupies exactly W threads instead of W busy + 1
        // parked.
        let per_worker = chunks.len().div_ceil(workers);
        let shares: Vec<&[&[usize]]> = chunks.chunks(per_worker).collect();
        let mut out = FrontierRun::default();
        std::thread::scope(|scope| {
            let run_share = &run_share;
            let handles: Vec<_> = shares[1..]
                .iter()
                .map(|worker_chunks| scope.spawn(move || run_share(worker_chunks)))
                .collect();
            out.merge(run_share(shares[0]));
            for handle in handles {
                out.merge(handle.join().expect("column worker panicked"));
            }
        });
        out
    }
}

/// What one [`CascadeExecutor::run_frontier`] call produced: per-column
/// scores tagged with their column index (a mid-step stop leaves
/// gaps), the chunks actually run, the summed in-chunk busy time, and
/// how much of it was already charged to the interrupt ledger.
#[derive(Debug, Default)]
struct FrontierRun {
    pairs: Vec<(usize, StepScores)>,
    chunks_run: usize,
    busy_nanos: u128,
    charged_nanos: u64,
}

impl FrontierRun {
    /// Fold another share's results in (shares are joined in frontier
    /// order, so `pairs` stays sorted by column position).
    fn merge(&mut self, other: FrontierRun) {
        self.pairs.extend(other.pairs);
        self.chunks_run += other.chunks_run;
        self.busy_nanos += other.busy_nanos;
        self.charged_nanos = self.charged_nanos.saturating_add(other.charged_nanos);
    }
}

/// What [`CascadeExecutor::run_budgeted`] produces: the cascade trace
/// plus the degradation events and the nanoseconds charged against the
/// request ledger for *this* table (the ledger itself may be shared
/// batch-wide).
#[derive(Debug)]
pub struct BudgetedTrace {
    /// Per-column `(step, scores)` traces plus one [`StepTiming`] per
    /// configured step — the same shape [`CascadeExecutor::run`]
    /// returns.
    pub trace: CascadeTrace,
    /// Steps skipped or truncated to honor the budget, in cascade
    /// order (empty when nothing degraded).
    pub skipped: Vec<SkippedStep>,
    /// Nanoseconds charged against the ledger for this table.
    pub charged_nanos: u64,
    /// Total `(step, column)` pairs answered from the base crawl's
    /// cache on the delta-aware path (the sum of
    /// [`StepTiming::delta_reused`] across steps); 0 without a
    /// [`DeltaContext`].
    pub delta_reused: usize,
}

/// Clamp a `u128` nanosecond count into the ledger's `u64` domain
/// (585 years of nanoseconds — saturation is theoretical).
fn saturating_u64(nanos: u128) -> u64 {
    u64::try_from(nanos).unwrap_or(u64::MAX)
}

/// Best confidence any executed step achieved for one column.
fn best_so_far(steps: &[(StepId, StepScores)]) -> f64 {
    steps
        .iter()
        .map(|(_, s)| s.best_confidence())
        .fold(0.0, f64::max)
}

/// Type of the single highest-confidence candidate across all executed
/// steps for one column (`UNKNOWN` when nothing scored).
fn best_type(steps: &[(StepId, StepScores)]) -> TypeId {
    steps
        .iter()
        .filter_map(|(_, s)| s.best())
        .max_by(|a, b| a.confidence.partial_cmp(&b.confidence).expect("finite"))
        .map_or(TypeId::UNKNOWN, |c| c.ty)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(policy: ParallelismPolicy, threads: usize) -> CascadeExecutor {
        CascadeExecutor::new(policy, threads)
    }

    #[test]
    fn off_policy_plans_one_sequential_chunk() {
        let e = exec(ParallelismPolicy::Off, 8);
        assert_eq!(e.plan_with(1, false), (1, 1));
        assert_eq!(e.plan_with(64, false), (64, 1));
    }

    #[test]
    fn threshold_policy_splits_wide_frontiers_only() {
        let e = exec(ParallelismPolicy::PerTableThreshold { min_columns: 8 }, 4);
        // Narrow: sequential.
        assert_eq!(e.plan_with(7, false), (7, 1));
        // Wide: split evenly across the budget.
        assert_eq!(e.plan_with(8, false), (2, 4));
        assert_eq!(e.plan_with(10, false), (3, 4));
        // A budget of one can never parallelize.
        let solo = exec(ParallelismPolicy::PerTableThreshold { min_columns: 8 }, 1);
        assert_eq!(solo.plan_with(64, false), (64, 1));
    }

    #[test]
    fn fixed_chunk_policy_chunks_regardless_of_width() {
        let e = exec(ParallelismPolicy::FixedChunk { columns: 3 }, 2);
        assert_eq!(e.plan_with(7, false), (3, 2), "3 chunks on 2 workers");
        assert_eq!(e.plan_with(2, false), (2, 1), "single chunk stays inline");
        // Chunk size clamps into the frontier; zero is treated as one.
        let tiny = exec(ParallelismPolicy::FixedChunk { columns: 0 }, 8);
        assert_eq!(tiny.plan_with(3, false), (1, 3));
        // Budget 1: chunked but inline.
        let solo = exec(ParallelismPolicy::FixedChunk { columns: 2 }, 1);
        assert_eq!(solo.plan_with(6, false), (2, 1));
    }

    #[test]
    fn forced_mode_parallelizes_everything_splittable() {
        // Forced mode overrides Off and single-thread budgets...
        let e = exec(ParallelismPolicy::Off, 1);
        assert_eq!(e.plan_with(4, true), (2, 2));
        let t = exec(ParallelismPolicy::PerTableThreshold { min_columns: 100 }, 1);
        assert_eq!(t.plan_with(10, true), (5, 2));
        // ... respects a larger budget ...
        let wide = exec(ParallelismPolicy::Off, 4);
        assert_eq!(wide.plan_with(8, true), (2, 4));
        // ... and leaves single-column frontiers alone.
        assert_eq!(e.plan_with(1, true), (1, 1));
    }

    #[test]
    fn executor_clamps_zero_threads() {
        let e = CascadeExecutor::new(ParallelismPolicy::Off, 0);
        assert_eq!(e.threads(), 1);
        assert_eq!(e.policy(), ParallelismPolicy::Off);
    }

    #[test]
    fn from_config_reads_policy_and_budget() {
        let config = SigmaTyperConfig {
            parallelism: ParallelismPolicy::FixedChunk { columns: 5 },
            column_threads: 3,
            ..SigmaTyperConfig::default()
        };
        let e = CascadeExecutor::from_config(&config);
        assert_eq!(e.policy(), ParallelismPolicy::FixedChunk { columns: 5 });
        assert_eq!(e.threads(), 3);
        // column_threads == 0 resolves to the machine's parallelism.
        let auto = CascadeExecutor::from_config(&SigmaTyperConfig::default());
        assert!(auto.threads() >= 1);
    }
}
