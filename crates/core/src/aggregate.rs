//! Final aggregation: soft majority vote over step confidences + τ.
//!
//! "The final prediction for each column in T is the soft majority vote
//! based on the concatenated confidence scores from each step. […] We
//! infer a parameter τ and threshold predictions that are below τ such
//! that the precision of the system is high." (§4.3)

use crate::config::SigmaTyperConfig;
use crate::prediction::{Candidate, StepId, StepScores};
use std::collections::HashMap;
use tu_ontology::TypeId;

/// Minimum best-candidate confidence for a step to count as having an
/// opinion in the vote (see [`soft_majority_vote`]).
pub const OPINION_FLOOR: f64 = 0.6;

/// Weight of a step in the vote (the config default — a [`Cascade`] may
/// override it per step; see [`soft_majority_vote_with`]).
///
/// [`Cascade`]: crate::cascade::Cascade
#[must_use]
pub fn step_weight(step: StepId, config: &SigmaTyperConfig) -> f64 {
    config.step_weight(step)
}

/// Soft majority vote over the steps that ran for one column, using the
/// config-default step weights.
///
/// Returns ranked candidates (top-k per config). The vote is a weighted
/// average of per-step confidences, so steps that agree reinforce each
/// other and a step that did not run neither helps nor hurts.
#[must_use]
pub fn soft_majority_vote(
    executed: &[(StepId, &StepScores)],
    config: &SigmaTyperConfig,
) -> Vec<Candidate> {
    soft_majority_vote_with(executed, config, &|step| config.step_weight(step))
}

/// [`soft_majority_vote`] with an arbitrary per-step weight function —
/// how a [`Cascade`](crate::cascade::Cascade) applies its per-step
/// weight overrides, and how custom registered steps get weighted at
/// all.
#[must_use]
pub fn soft_majority_vote_with(
    executed: &[(StepId, &StepScores)],
    config: &SigmaTyperConfig,
    weight_of: &dyn Fn(StepId) -> f64,
) -> Vec<Candidate> {
    if executed.is_empty() {
        return Vec::new();
    }
    // A step only counts as *voting* when it holds a real opinion: at
    // least one candidate at or above the opinion floor. Steps below the
    // floor are excluded from the vote entirely — letting their junk
    // candidates add mass without weight would flip close votes. When no
    // step clears the floor, every step with candidates votes instead.
    let opinionated = |s: &StepScores| s.best_confidence() >= OPINION_FLOOR;
    let any_opinion = executed.iter().any(|(_, s)| opinionated(s));
    let participates = |s: &StepScores| {
        if any_opinion {
            opinionated(s)
        } else {
            !s.candidates.is_empty()
        }
    };
    let total_weight: f64 = executed
        .iter()
        .filter(|(_, s)| participates(s))
        .map(|(s, _)| weight_of(*s))
        .sum();
    if total_weight <= 0.0 {
        return Vec::new();
    }
    let mut scores: HashMap<TypeId, f64> = HashMap::new();
    for (step, s) in executed {
        if !participates(s) {
            continue;
        }
        let w = weight_of(*step);
        for c in &s.candidates {
            *scores.entry(c.ty).or_insert(0.0) += w * c.confidence;
        }
    }
    let mut out: Vec<Candidate> = scores
        .into_iter()
        .map(|(ty, sum)| Candidate {
            ty,
            confidence: sum / total_weight,
        })
        .collect();
    out.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .expect("finite")
            .then(a.ty.cmp(&b.ty))
    });
    out.truncate(config.top_k);
    out
}

/// Apply the abstention threshold τ: the final decision is `unknown`
/// when the top candidate is `unknown` itself or its confidence is
/// below τ.
#[must_use]
pub fn apply_tau(top: &[Candidate], tau: f64) -> (TypeId, f64) {
    match top.first() {
        Some(c) if !c.ty.is_unknown() && c.confidence >= tau => (c.ty, c.confidence),
        Some(c) => (TypeId::UNKNOWN, c.confidence),
        None => (TypeId::UNKNOWN, 0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prediction::Step;

    fn scores(cands: &[(u16, f64)]) -> StepScores {
        StepScores::from_candidates(
            cands
                .iter()
                .map(|&(t, c)| Candidate {
                    ty: TypeId(t),
                    confidence: c,
                })
                .collect(),
        )
    }

    #[test]
    fn agreement_reinforces() {
        let cfg = SigmaTyperConfig::default();
        let h = scores(&[(1, 0.8)]);
        let l = scores(&[(1, 0.9)]);
        let agree = soft_majority_vote(&[(Step::Header, &h), (Step::Lookup, &l)], &cfg);
        let single = soft_majority_vote(&[(Step::Header, &h)], &cfg);
        assert_eq!(agree[0].ty, TypeId(1));
        assert!(agree[0].confidence > 0.8);
        assert!((single[0].confidence - 0.8).abs() < 1e-9);
    }

    #[test]
    fn disagreement_dilutes() {
        let cfg = SigmaTyperConfig::default();
        let h = scores(&[(1, 0.9)]);
        let l = scores(&[(2, 0.9)]);
        let out = soft_majority_vote(&[(Step::Header, &h), (Step::Lookup, &l)], &cfg);
        // Both remain but neither at 0.9.
        assert_eq!(out.len(), 2);
        assert!(out[0].confidence < 0.9);
    }

    #[test]
    fn weights_matter() {
        let cfg = SigmaTyperConfig {
            weight_embedding: 3.0,
            weight_header: 1.0,
            ..SigmaTyperConfig::default()
        };
        let h = scores(&[(1, 0.9)]);
        let e = scores(&[(2, 0.9)]);
        let out = soft_majority_vote(&[(Step::Header, &h), (Step::Embedding, &e)], &cfg);
        assert_eq!(out[0].ty, TypeId(2), "heavier step should win ties");
    }

    #[test]
    fn top_k_truncation() {
        let cfg = SigmaTyperConfig {
            top_k: 2,
            ..SigmaTyperConfig::default()
        };
        let h = scores(&[(1, 0.9), (2, 0.5), (3, 0.1)]);
        let out = soft_majority_vote(&[(Step::Header, &h)], &cfg);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn tau_thresholding() {
        let high = vec![Candidate {
            ty: TypeId(4),
            confidence: 0.8,
        }];
        assert_eq!(apply_tau(&high, 0.4), (TypeId(4), 0.8));
        let low = vec![Candidate {
            ty: TypeId(4),
            confidence: 0.2,
        }];
        assert_eq!(apply_tau(&low, 0.4), (TypeId::UNKNOWN, 0.2));
        // Top candidate unknown → abstain regardless.
        let unk = vec![Candidate {
            ty: TypeId::UNKNOWN,
            confidence: 0.9,
        }];
        assert_eq!(apply_tau(&unk, 0.4).0, TypeId::UNKNOWN);
        assert_eq!(apply_tau(&[], 0.4), (TypeId::UNKNOWN, 0.0));
    }

    #[test]
    fn empty_steps_vote_nothing() {
        let cfg = SigmaTyperConfig::default();
        assert!(soft_majority_vote(&[], &cfg).is_empty());
    }

    #[test]
    fn default_vote_equals_explicit_config_weights() {
        let cfg = SigmaTyperConfig::default();
        let h = scores(&[(1, 0.8), (3, 0.2)]);
        let e = scores(&[(2, 0.9)]);
        let executed = [(Step::Header, &h), (Step::Embedding, &e)];
        let plain = soft_majority_vote(&executed, &cfg);
        let explicit = soft_majority_vote_with(&executed, &cfg, &|s| cfg.step_weight(s));
        assert_eq!(plain.len(), explicit.len());
        for (a, b) in plain.iter().zip(&explicit) {
            assert_eq!(a.ty, b.ty);
            assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
        }
    }

    #[test]
    fn custom_steps_vote_through_the_weight_function() {
        let cfg = SigmaTyperConfig::default();
        let custom = StepId::custom(0);
        let h = scores(&[(1, 0.9)]);
        let c = scores(&[(2, 0.9)]);
        let executed = [(Step::Header, &h), (custom, &c)];
        // Default weight for a custom step is 1.0 → header (1.0) ties,
        // type order breaks the tie.
        let out = soft_majority_vote(&executed, &cfg);
        assert_eq!(out[0].ty, TypeId(1));
        // An override can make the custom step dominate.
        let out = soft_majority_vote_with(&executed, &cfg, &|s| {
            if s == custom {
                4.0
            } else {
                cfg.step_weight(s)
            }
        });
        assert_eq!(out[0].ty, TypeId(2), "heavier custom step must win");
    }
}
