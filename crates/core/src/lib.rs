//! # sigmatyper
//!
//! The core of the CIDR'22 *Making Table Understanding Work in Practice*
//! reproduction: **SigmaTyper**, a hybrid, adaptive semantic column type
//! detection system.
//!
//! Architecture (paper Figures 2–4):
//! * a pretrained [`GlobalModel`] shared by all customers — header
//!   matcher, value lookup (knowledge base + regex bank + global LFs),
//!   and a table-embedding classifier with a background `unknown` class;
//! * per-customer [`SigmaTyper`] instances holding a [`LocalModel`] that
//!   adapts through **data programming by demonstration**: explicit
//!   relabels and implicit approvals become labeling functions, mined
//!   weak labels, and local finetuning, with per-type weights `Wl`
//!   growing over time;
//! * a pluggable **cascade** of [`AnnotationStep`]s ordered by inference
//!   cost, gated by the confidence threshold `c`, aggregated by a soft
//!   majority vote, and thresholded by τ for high-precision abstention.
//!   The default cascade is the paper's three steps; deployments add,
//!   remove, reorder, and reweight steps through [`SigmaTyper::builder`];
//! * an **executor layer** ([`CascadeExecutor`]) that walks each step's
//!   pending-column frontier, consults the per-step [`StepCache`], and
//!   — under a [`ParallelismPolicy`] — runs wide frontiers
//!   column-parallel in batched chunks, bit-identical to sequential
//!   execution;
//! * a **budgeted request API** ([`AnnotationRequest`] →
//!   [`AnnotationOutcome`]): per-request latency budgets enforced by a
//!   [`BudgetLedger`], a [`DegradationPolicy`] deciding whether
//!   over-budget tail steps are dropped or truncated (degrade, don't
//!   queue — affected columns abstain, never fabricate), a
//!   [`DegradationReport`] accounting for every shed step, and an
//!   online [`CostModel`] of measured per-step cost/yield that powers
//!   predictive drops and cost-aware cascade reordering
//!   ([`Cascade::reorder_by_cost`]).
//!
//! ```
//! use sigmatyper::{train_global, SigmaTyper, SigmaTyperConfig, TrainingConfig};
//! use tu_corpus::{generate_corpus, CorpusConfig};
//! use tu_ontology::builtin_ontology;
//!
//! let ontology = builtin_ontology();
//! let corpus = generate_corpus(&ontology, &CorpusConfig::database_like(7, 20));
//! let global = train_global(ontology, &corpus, &TrainingConfig::fast());
//! let typer = SigmaTyper::new(std::sync::Arc::new(global), SigmaTyperConfig::default());
//! let annotation = typer.annotate(&corpus.tables[0].table);
//! assert_eq!(annotation.columns.len(), corpus.tables[0].table.n_cols());
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod backend;
pub mod cache;
pub mod cascade;
pub mod config;
pub mod cost;
pub mod diskcache;
pub mod embedstep;
pub mod executor;
pub mod global;
pub mod headerstep;
pub mod local;
pub mod lookupstep;
pub mod prediction;
pub mod regexbank;
pub mod request;
pub mod service;
pub mod step;
pub mod system;
pub mod tenant;

pub use backend::{
    AccuracyClass, BackendState, BatchedFrontier, BlockedSimd, EmbeddingBackend,
    EmbeddingBackendKind, QuantizedI8, ReferenceF32, UnknownBackendError,
};
pub use cache::{
    column_fingerprints, column_fingerprints_chained, CacheContext, CacheKey, CacheStats,
    ColumnFingerprint, ColumnHashState, EpochSource, ShardedLruCache, StableHasher, StepCache,
    MAX_FINGERPRINT_CHAIN,
};
pub use cascade::Cascade;
pub use config::{SigmaTyperConfig, TrainingConfig};
pub use cost::{CostModel, StepCostEstimate};
pub use diskcache::{
    DiskCache, DurableEpochSource, TieredStepCache, DISK_FORMAT_VERSION, UNKNOWN_EPOCH,
};
pub use embedstep::{train_embedding_model, TableEmbeddingModel};
pub use executor::{
    forced_column_parallelism, BudgetedTrace, CascadeExecutor, DeltaContext, ParallelismPolicy,
};
pub use global::{train_global, GlobalModel};
pub use headerstep::HeaderMatcher;
pub use local::LocalModel;
pub use lookupstep::ValueLookup;
pub use prediction::{
    Candidate, ColumnAnnotation, Step, StepId, StepScores, StepTiming, TableAnnotation,
};
pub use regexbank::RegexBank;
pub use request::{
    forced_step_budget_nanos, AnnotationOutcome, AnnotationRequest, BudgetContext, BudgetLedger,
    DegradationPolicy, DegradationReport, RequestOptions, SkipReason, SkippedStep,
    TelemetryVerbosity,
};
pub use service::{
    AdaptiveSizer, AdaptiveSizingConfig, AnnotationService, BoundedQueue, LaneLedger,
    QueueRejection, TrafficLane,
};
pub use step::{
    AnnotationStep, ColumnState, EmbeddingStep, HeaderStep, LookupStep, RegexOnlyStep, StepContext,
    TableSetup,
};
pub use system::{SigmaTyper, SigmaTyperBuilder};
pub use tenant::{
    admission_cutoff, LaneCounters, ShapedBudget, TenantId, TenantLaneSnapshot, TenantRegistry,
    TenantSnapshot, TrafficShaper, ANONYMOUS_TENANT,
};
