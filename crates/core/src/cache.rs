//! Per-step annotation result caching for repeat crawls.
//!
//! The deployment the paper targets (§4, Figure 2) is a data catalog
//! repeatedly crawling slowly changing customer warehouses: between two
//! crawls most columns are byte-identical, and every cascade step is a
//! deterministic function of its [`StepContext`]. This module memoizes
//! step results across crawls:
//!
//! * a [`ColumnFingerprint`] identifies one column *in its full
//!   annotation context* — the column's header and values, the rest of
//!   the table (neighbor headers and values feed the lookup and
//!   embedding steps, and custom steps may read anything in the
//!   context), the ordered step ids of the cascade (earlier steps
//!   shape the tentative types later steps see), the step-relevant
//!   [`SigmaTyperConfig`] fields, and the customer's **cache epoch**;
//! * a [`CacheKey`] combines a fingerprint with one [`StepId`];
//! * a [`StepCache`] stores `CacheKey → StepScores`; the default
//!   backend is [`ShardedLruCache`], a capacity-bounded, mutex-sharded
//!   in-memory LRU safe to share (`Arc`) across the
//!   [`AnnotationService`](crate::service::AnnotationService) worker
//!   threads.
//!
//! # Correctness model
//!
//! Annotation is deterministic and read-only, so a step's scores are a
//! pure function of `(table content, cascade step order, config, global
//! model, local model)`. The global model is immutable after training.
//! The local model and ontology mutate only through
//! [`SigmaTyper`](crate::system::SigmaTyper) adaptation entry points
//! (feedback, implicit approval, custom type registration, cascade
//! surgery), each of which re-draws the customer's epoch — and the
//! epoch is hashed into every fingerprint, so adaptation can never
//! serve a stale score: old entries simply become unreachable and age
//! out of the LRU (or are dropped by disk-tier compaction). Config
//! changes need no epoch re-draw because the config fields are hashed
//! into the fingerprint directly.
//!
//! Epochs come from one of two sources:
//!
//! * **Ephemeral** (the default): a process-global monotone counter
//!   seeded with process-unique entropy (pid mixed with startup time),
//!   so epochs are unique both within a process *and* across
//!   processes with overwhelming probability. Several customer
//!   instances — even in different processes pooling one external
//!   cache — never share an epoch, so their entries never collide.
//! * **Durable**: an [`EpochSource`] such as
//!   [`DurableEpochSource`](crate::diskcache::DurableEpochSource),
//!   which persists the customer's epoch in a small write-ahead file.
//!   A restarted process resumes the *same* epoch (so a persistent
//!   cache tier stays warm), and an adaptation in any process advances
//!   the file before the new epoch is used, so every other process
//!   observing the source stops reaching the stale entries.
//!
//! The on-disk tier ([`DiskCache`](crate::diskcache::DiskCache))
//! additionally tags its segment with an explicit format/fingerprint
//! version ([`DISK_FORMAT_VERSION`](crate::diskcache::DISK_FORMAT_VERSION)):
//! the [`StableHasher`] contract is only "stable for one code
//! version", so a segment written by a different version is discarded
//! as cold at open instead of being trusted.
//!
//! The golden-equivalence suite (`tests/golden_cascade.rs`) proves
//! cached and uncached annotation bit-identical across fresh, ablated,
//! and adaptation-heavy customers; `tests/persistent_cache.rs` extends
//! the proof across a simulated process restart.
//!
//! # Admission
//!
//! Steps advertise whether memoization pays through
//! [`AnnotationStep::cacheable`](crate::step::AnnotationStep::cacheable)
//! (default `true`). The executor never consults or fills the cache
//! for a non-cacheable step — the built-in header step opts out
//! because its memo traffic would rival the step itself — so such
//! steps simply re-run on every crawl, which is output-identical by
//! determinism.
//!
//! [`StepContext`]: crate::step::StepContext
//! [`SigmaTyperConfig`]: crate::config::SigmaTyperConfig

use crate::config::SigmaTyperConfig;
use crate::prediction::{StepId, StepScores};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tu_table::{Column, ColumnDelta, Table, Value};

/// A deterministic 128-bit streaming hasher (two FNV-1a/64 lanes with
/// distinct offset bases, avalanche-finalized).
///
/// `std::hash` hashers are not guaranteed stable across std releases
/// and `DefaultHasher` is explicitly documented as unstable, so the
/// fingerprint pipeline uses this fixed algorithm instead: the same
/// bytes always produce the same fingerprint within and across runs.
/// Custom [`StepCache`] backends that persist entries can rely on that
/// stability for the lifetime of one code version (the hashed field
/// set may grow in future versions). That promise is checked, not
/// assumed: persistent backends stamp their artifacts with
/// [`DISK_FORMAT_VERSION`](crate::diskcache::DISK_FORMAT_VERSION) and
/// treat a mismatched segment as cold at open.
#[derive(Debug, Clone)]
pub struct StableHasher {
    a: u64,
    b: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Offset of the second lane — an arbitrary odd constant (the golden
/// ratio) keeping the two lanes decorrelated.
const LANE_B_TWEAK: u64 = 0x9e37_79b9_7f4a_7c15;

/// splitmix64's avalanche finalizer: every input bit affects every
/// output bit, so truncating or XOR-folding the result stays well
/// distributed (the sharded cache picks shards from the low bits).
pub(crate) const fn avalanche(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        StableHasher {
            a: FNV_OFFSET,
            b: FNV_OFFSET ^ LANE_B_TWEAK,
        }
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Absorb a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a `usize` (widened to `u64` so 32/64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorb an `f64` by bit pattern (`-0.0` and `0.0` therefore hash
    /// differently — bitwise identity is exactly what the
    /// golden-equivalence contract demands).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorb a string, length-prefixed so `("ab", "c")` and
    /// `("a", "bc")` cannot collide.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// Absorb one table cell. The dynamic type tag is hashed alongside
    /// the payload: `Value::Int(1)` and `Value::Text("1")` render the
    /// same but drive type-sensitive signals differently.
    pub fn write_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.write_u8(0),
            Value::Int(i) => {
                self.write_u8(1);
                self.write(&i.to_le_bytes());
            }
            Value::Float(f) => {
                self.write_u8(2);
                self.write_f64(*f);
            }
            Value::Bool(b) => {
                self.write_u8(3);
                self.write_u8(u8::from(*b));
            }
            Value::Date(d) => {
                self.write_u8(4);
                self.write(&d.to_epoch_days().to_le_bytes());
            }
            Value::Text(s) => {
                self.write_u8(5);
                self.write_str(s);
            }
        }
    }

    /// Finish, producing 128 avalanche-mixed bits.
    #[must_use]
    pub fn finish128(&self) -> [u64; 2] {
        [avalanche(self.a), avalanche(self.b ^ LANE_B_TWEAK)]
    }
}

/// The cache identity of one column within one annotation run.
///
/// Two equal fingerprints guarantee the cascade would compute
/// bit-identical scores for the column at every step (see the module
/// docs for the correctness model); two unequal fingerprints merely
/// miss. Computed once per column per table by
/// [`column_fingerprints`] and exposed to steps through
/// [`StepContext::fingerprint`](crate::step::StepContext::fingerprint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnFingerprint([u64; 2]);

impl ColumnFingerprint {
    /// Raw 128 bits (stable across runs; useful for telemetry keys or
    /// persistent cache backends).
    #[must_use]
    pub fn raw(self) -> [u64; 2] {
        self.0
    }
}

/// Key of one cache entry: a [`ColumnFingerprint`] bound to the step
/// that produced (or would produce) the scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey([u64; 2]);

impl CacheKey {
    /// Key for `step`'s result on the column identified by `fp`.
    #[must_use]
    pub fn for_step(fp: ColumnFingerprint, step: StepId) -> Self {
        let tweak = avalanche(u64::from(step.raw()) ^ LANE_B_TWEAK);
        CacheKey([avalanche(fp.0[0] ^ tweak), fp.0[1] ^ tweak])
    }

    /// Raw 128 bits.
    #[must_use]
    pub fn raw(self) -> [u64; 2] {
        self.0
    }

    /// Rebuild a key from its raw 128 bits — the inverse of
    /// [`raw`](CacheKey::raw), for persistent backends that store keys
    /// on disk and reconstruct them at open.
    #[must_use]
    pub fn from_raw(raw: [u64; 2]) -> Self {
        CacheKey(raw)
    }
}

/// Longest fingerprint delta chain before
/// [`ColumnHashState::apply_delta`] collapses back to a fresh full
/// rehash of the column.
///
/// The chained hash is bit-exact at any length (property-tested), so
/// the cap is not about hash quality — it bounds how far a retained
/// mid-state may drift from its last full-rehash checkpoint before the
/// next delta re-anchors it against the actual materialized values.
pub const MAX_FINGERPRINT_CHAIN: usize = 16;

/// A retained mid-state of one column's content hash, extendable by
/// append-only deltas without rehashing the values already absorbed.
///
/// The column content hash absorbs the header, then every cell in
/// order, then a trailing row count. Cells are self-delimiting (type
/// tag plus length-prefixed payloads) and the count comes *last*, so
/// the state after `name + cells` is a valid prefix of the hash of any
/// extension of the column: an
/// [`ColumnDeltaKind::Appended`](tu_table::ColumnDeltaKind::Appended)
/// delta
/// folds just the new cells into the retained hasher — O(delta), not
/// O(column) — and [`content_hash`](ColumnHashState::content_hash)
/// stays bit-identical to hashing the materialized column from
/// scratch. Non-append deltas (truncations, rewrites, header changes)
/// have no incremental structure in an append-only hash and collapse
/// to a fresh full rehash, as does the chain once it exceeds
/// [`MAX_FINGERPRINT_CHAIN`].
#[derive(Debug, Clone)]
pub struct ColumnHashState {
    hasher: StableHasher,
    len: usize,
    chain_len: usize,
}

impl ColumnHashState {
    /// Hash `col` from scratch (a fresh base fingerprint: chain length
    /// zero).
    #[must_use]
    pub fn of(col: &Column) -> Self {
        let mut hasher = StableHasher::new();
        hasher.write_str(&col.name);
        for v in &col.values {
            hasher.write_value(v);
        }
        ColumnHashState {
            hasher,
            len: col.values.len(),
            chain_len: 0,
        }
    }

    /// Advance the state over `delta`, where `col` is the column the
    /// delta produces (the new crawl's column).
    ///
    /// Returns `true` when the delta was folded in incrementally
    /// (append-only, header unchanged, chain below the cap); `false`
    /// when the state collapsed to a fresh full rehash of `col`. In
    /// both cases the resulting
    /// [`content_hash`](ColumnHashState::content_hash) equals
    /// `ColumnHashState::of(col).content_hash()` exactly.
    pub fn apply_delta(&mut self, col: &Column, delta: &ColumnDelta) -> bool {
        if !delta.header_changed {
            if delta.is_empty() {
                return true;
            }
            if self.chain_len < MAX_FINGERPRINT_CHAIN {
                if let Some(appended) = delta.appended() {
                    for v in appended {
                        self.hasher.write_value(v);
                    }
                    self.len += appended.len();
                    self.chain_len += 1;
                    debug_assert_eq!(self.len, col.values.len());
                    return true;
                }
            }
        }
        *self = ColumnHashState::of(col);
        false
    }

    /// The column content hash of the current state — bit-identical to
    /// hashing the materialized column from scratch.
    #[must_use]
    pub fn content_hash(&self) -> [u64; 2] {
        let mut h = self.hasher.clone();
        h.write_usize(self.len);
        h.finish128()
    }

    /// Rows absorbed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no rows have been absorbed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Deltas folded in since the last full rehash.
    #[must_use]
    pub fn chain_len(&self) -> usize {
        self.chain_len
    }
}

/// Shared-base fingerprint derivation from precomputed per-column
/// content hashes (the common tail of [`column_fingerprints`] and
/// [`column_fingerprints_chained`]).
fn fingerprints_from_col_hashes(
    table: &Table,
    step_ids: &[StepId],
    config: &SigmaTyperConfig,
    epoch: u64,
    col_hashes: &[[u64; 2]],
) -> Vec<ColumnFingerprint> {
    // Shared base: everything that identifies the run as a whole. The
    // table name is included because a custom step may read it through
    // `ctx.table` (conservative: affects hit rate, never correctness).
    let mut base = StableHasher::new();
    base.write_str(&table.name);
    base.write_usize(table.n_rows());
    base.write_usize(step_ids.len());
    for id in step_ids {
        base.write_u64(u64::from(id.raw()));
    }
    config.fingerprint_into(&mut base);
    base.write_u64(epoch);
    base.write_usize(col_hashes.len());
    for ch in col_hashes {
        base.write_u64(ch[0]);
        base.write_u64(ch[1]);
    }

    col_hashes
        .iter()
        .enumerate()
        .map(|(ci, ch)| {
            let mut h = base.clone();
            h.write_usize(ci);
            h.write_u64(ch[0]);
            h.write_u64(ch[1]);
            ColumnFingerprint(h.finish128())
        })
        .collect()
}

/// Compute the per-column fingerprints for one annotation run of
/// `table` under a cascade executing `step_ids` in order, the given
/// config, and the customer's current cache `epoch`.
///
/// The whole table is hashed once (shared base) and each column adds
/// its own index and content hash on top, so the total cost is one
/// pass over the table's cells regardless of cascade depth.
#[must_use]
pub fn column_fingerprints(
    table: &Table,
    step_ids: &[StepId],
    config: &SigmaTyperConfig,
    epoch: u64,
) -> Vec<ColumnFingerprint> {
    // Per-column content hash: header + cells (hashed exactly once).
    let col_hashes: Vec<[u64; 2]> = table
        .columns()
        .iter()
        .map(|col| ColumnHashState::of(col).content_hash())
        .collect();
    fingerprints_from_col_hashes(table, step_ids, config, epoch, &col_hashes)
}

/// [`column_fingerprints`] from retained [`ColumnHashState`]s instead
/// of rehashing every cell — the delta-chain fast path for recrawls.
///
/// `states` must hold one state per column of `table`, already
/// advanced over the deltas that produced this crawl (see
/// [`ColumnHashState::apply_delta`]). Because a state's content hash
/// is bit-identical to a fresh rehash, the fingerprints returned here
/// equal [`column_fingerprints`] on the same inputs — so exact cache
/// hits keep working unchanged — while the per-crawl hashing cost
/// drops from O(cells) to O(changed cells).
///
/// # Panics
/// When `states` does not match the table shape (one state per
/// column, each state's absorbed row count equal to the table's).
#[must_use]
pub fn column_fingerprints_chained(
    table: &Table,
    step_ids: &[StepId],
    config: &SigmaTyperConfig,
    epoch: u64,
    states: &[ColumnHashState],
) -> Vec<ColumnFingerprint> {
    assert_eq!(
        states.len(),
        table.n_cols(),
        "one hash state per table column"
    );
    for s in states {
        assert_eq!(
            s.len(),
            table.n_rows(),
            "hash state rows must match the table"
        );
    }
    let col_hashes: Vec<[u64; 2]> = states.iter().map(ColumnHashState::content_hash).collect();
    fingerprints_from_col_hashes(table, step_ids, config, epoch, &col_hashes)
}

/// A pluggable store of per-step annotation results.
///
/// Implementations must be safe to share across the
/// [`AnnotationService`](crate::service::AnnotationService) worker
/// threads (`Send + Sync`) and must return entries exactly as
/// inserted: the cascade pushes cached scores into the annotation
/// trace unmodified, and the golden-equivalence contract requires
/// bit-identical `StepScores`. A backend may evict anything at any
/// time (missing is always safe; wrong is never safe).
pub trait StepCache: std::fmt::Debug + Send + Sync {
    /// Look up the scores for `key`, refreshing its recency.
    fn get(&self, key: &CacheKey) -> Option<StepScores>;

    /// Store the scores for `key` (replacing any previous entry).
    fn insert(&self, key: CacheKey, scores: StepScores);

    /// Number of entries currently stored.
    fn len(&self) -> usize;

    /// `true` when the cache holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry.
    fn clear(&self);

    /// Aggregate counters (see [`CacheStats`]). The default reports
    /// only the entry count — backends that track traffic (the
    /// built-in [`ShardedLruCache`] does) override this so operators
    /// can size capacity from hit rates via
    /// [`AnnotationService::cache_stats`](crate::service::AnnotationService::cache_stats).
    fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.len(),
            ..CacheStats::default()
        }
    }

    /// Store the scores for `key`, recording the cache `epoch` they
    /// were computed under. Persistent backends use the epoch for
    /// compaction (entries from unreachable epochs can be dropped);
    /// purely in-memory backends may ignore it — unreachable entries
    /// age out of a bounded store on their own. Defaults to plain
    /// [`insert`](StepCache::insert).
    fn insert_with_epoch(&self, key: CacheKey, scores: StepScores, epoch: u64) {
        let _ = epoch;
        self.insert(key, scores);
    }

    /// Ask the backend to re-bound itself to about `capacity` entries,
    /// evicting as needed. Returns `true` when the backend applied the
    /// change; the default (for backends without a meaningful bound)
    /// ignores the request and returns `false`. Used by the
    /// [`AnnotationService`](crate::service::AnnotationService)
    /// adaptive sizing loop.
    fn resize(&self, capacity: usize) -> bool {
        let _ = capacity;
        false
    }

    /// Flush buffered state to durable storage. In-memory backends
    /// have nothing to do; persistent ones override this to make prior
    /// inserts visible to a later (or concurrent) process.
    fn flush(&self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A source of cache epochs for one customer instance.
///
/// The default (no source installed) is an ephemeral process-global
/// counter: unique epochs, but a restarted process cannot resume its
/// predecessor's epoch, so a persistent cache tier would come up cold.
/// A durable source (see
/// [`DurableEpochSource`](crate::diskcache::DurableEpochSource))
/// persists the epoch so restarts stay warm and adaptation in one
/// process invalidates cached entries read by another.
///
/// Contract: [`advance`](EpochSource::advance) must make the new epoch
/// durable *before* returning it (write-ahead), and
/// [`current`](EpochSource::current) must observe the latest advanced
/// epoch, including advances performed by other processes sharing the
/// source's backing store. Adaptation is single-writer per customer
/// (a `SigmaTyper` mutates through `&mut self`), so concurrent
/// `advance` calls on one customer's source are out of contract.
pub trait EpochSource: std::fmt::Debug + Send + Sync {
    /// The current epoch — the one new fingerprints should hash.
    fn current(&self) -> u64;

    /// Durably advance to a fresh epoch and return it.
    fn advance(&self) -> u64;
}

/// A borrowed cache plus the epoch to fingerprint with — what
/// [`Cascade::run_cached`](crate::cascade::Cascade::run_cached) needs
/// from the owning [`SigmaTyper`](crate::system::SigmaTyper).
#[derive(Debug, Clone, Copy)]
pub struct CacheContext<'a> {
    /// The step cache to consult and fill.
    pub cache: &'a dyn StepCache,
    /// The customer's current cache epoch (see the module docs).
    pub epoch: u64,
}

/// Aggregate counters of a [`ShardedLruCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries stored (including replacements).
    pub inserts: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hit fraction of all lookups so far (0 when none happened).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The traffic between `baseline` and `self`. **Mixed semantics,
    /// by design:** the four traffic counters (`hits`, `misses`,
    /// `inserts`, `evictions`) are deltas — saturating, so a cleared
    /// backend cannot underflow — while `entries` is **not** a delta:
    /// it is carried from `self`, i.e. it stays the *current absolute
    /// occupancy*. A delta of a gauge is rarely meaningful (entries
    /// fall on eviction and clear), and sizing decisions want the
    /// absolute count next to the per-batch traffic, so that is what
    /// this returns. Consumers such as the
    /// [`AnnotationService`](crate::service::AnnotationService)
    /// adaptive sizing loop must read `entries` as "occupancy now",
    /// never as "entries added this batch" (that is `inserts` minus
    /// replacements).
    ///
    /// Snapshot before a batch, diff after — per-batch totals without
    /// scraping per-table `StepTiming` records:
    ///
    /// ```
    /// use sigmatyper::{CacheKey, CacheStats, ShardedLruCache, StepCache};
    /// use sigmatyper::{Candidate, StepScores};
    /// use tu_ontology::TypeId;
    /// let cache = ShardedLruCache::new(64);
    /// let scores = StepScores::from_candidates(vec![Candidate { ty: TypeId(1), confidence: 0.9 }]);
    /// cache.insert(CacheKey::from_raw([1, 2]), scores);
    /// let before = cache.stats();
    /// // ... annotate a batch ...
    /// let batch = cache.stats().since(&before);
    /// // Traffic counters are per-batch deltas…
    /// assert_eq!(batch.hits + batch.misses + batch.inserts, 0);
    /// // …but `entries` is the current absolute occupancy, not a delta.
    /// assert_eq!(batch.entries, 1);
    /// ```
    #[must_use]
    pub fn since(&self, baseline: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(baseline.hits),
            misses: self.misses.saturating_sub(baseline.misses),
            inserts: self.inserts.saturating_sub(baseline.inserts),
            evictions: self.evictions.saturating_sub(baseline.evictions),
            entries: self.entries,
        }
    }
}

/// Slot index marking "no neighbor" in the intrusive LRU list.
const NIL: usize = usize::MAX;

struct LruEntry {
    key: CacheKey,
    scores: StepScores,
    prev: usize,
    next: usize,
}

/// One mutex-guarded shard: a bounded LRU over an intrusive
/// doubly-linked list threaded through a slot vector — O(1) get,
/// insert, and eviction, no per-entry allocation beyond the scores.
struct LruShard {
    map: HashMap<CacheKey, usize>,
    entries: Vec<LruEntry>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl LruShard {
    fn new(capacity: usize) -> Self {
        LruShard {
            map: HashMap::with_capacity(capacity),
            entries: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.entries[i].prev, self.entries[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.entries[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.entries[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.entries[i].prev = NIL;
        self.entries[i].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<StepScores> {
        let i = *self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        Some(self.entries[i].scores.clone())
    }

    /// Insert; returns `true` when an entry was evicted to make room.
    fn insert(&mut self, key: CacheKey, scores: StepScores) -> bool {
        if let Some(&i) = self.map.get(&key) {
            self.entries[i].scores = scores;
            self.unlink(i);
            self.push_front(i);
            return false;
        }
        if self.entries.len() < self.capacity {
            let i = self.entries.len();
            self.entries.push(LruEntry {
                key,
                scores,
                prev: NIL,
                next: NIL,
            });
            self.map.insert(key, i);
            self.push_front(i);
            return false;
        }
        // Full: reuse the least-recently-used slot.
        let i = self.tail;
        self.unlink(i);
        self.map.remove(&self.entries[i].key);
        self.entries[i].key = key;
        self.entries[i].scores = scores;
        self.map.insert(key, i);
        self.push_front(i);
        true
    }

    fn clear(&mut self) {
        self.map.clear();
        self.entries.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Re-bound the shard to `capacity` entries, dropping LRU-first
    /// when shrinking. Returns how many entries were evicted. The slot
    /// vector is rebuilt (slots are only reusable at-capacity, so a
    /// shrink must compact them) preserving recency order.
    fn set_capacity(&mut self, capacity: usize) -> usize {
        if capacity == self.capacity {
            return 0;
        }
        // Drain in MRU → LRU order.
        let mut order: Vec<usize> = Vec::with_capacity(self.entries.len());
        let mut i = self.head;
        while i != NIL {
            order.push(i);
            i = self.entries[i].next;
        }
        let evicted = order.len().saturating_sub(capacity);
        order.truncate(capacity);
        let mut fresh = LruShard::new(capacity);
        // Insert LRU-first so push_front restores the original order.
        for &slot in order.iter().rev() {
            let e = &self.entries[slot];
            fresh.insert(e.key, e.scores.clone());
        }
        *self = fresh;
        evicted
    }
}

impl std::fmt::Debug for LruShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruShard")
            .field("entries", &self.entries.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

/// The default [`StepCache`] backend: a capacity-bounded, in-memory
/// LRU split into independently locked shards so the
/// [`AnnotationService`](crate::service::AnnotationService) worker
/// threads rarely contend.
///
/// ```
/// use sigmatyper::{ShardedLruCache, StepCache};
/// let cache = ShardedLruCache::new(1024);
/// assert!(cache.is_empty());
/// assert_eq!(cache.stats().hits, 0);
/// ```
#[derive(Debug)]
pub struct ShardedLruCache {
    shards: Box<[Mutex<LruShard>]>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

/// Default shard count (a power of two; shard choice masks low key
/// bits).
const DEFAULT_SHARDS: usize = 8;

impl ShardedLruCache {
    /// A cache holding at most ~`capacity` entries across
    /// [`DEFAULT_SHARDS`](ShardedLruCache::with_shards) shards.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ShardedLruCache::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count. `capacity` is divided
    /// evenly; every shard holds at least one entry, so tiny
    /// capacities round up to `shards` total. `shards` is rounded up
    /// to a power of two (shard choice is a mask).
    #[must_use]
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard = capacity.div_ceil(shards).max(1);
        let shards: Vec<Mutex<LruShard>> = (0..shards)
            .map(|_| Mutex::new(LruShard::new(per_shard)))
            .collect();
        ShardedLruCache {
            shards: shards.into_boxed_slice(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Total entry capacity (sum over shards).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.shards.first().map_or(0, |s| Self::lock(s).capacity)
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<LruShard> {
        // Keys are avalanche-mixed, so the low bits are uniform.
        &self.shards[(key.raw()[0] as usize) & (self.shards.len() - 1)]
    }

    /// Lock a shard, tolerating poisoning: the cache holds plain data,
    /// so a panic in another thread mid-operation at worst loses
    /// recency ordering, never integrity of returned scores.
    fn lock(shard: &Mutex<LruShard>) -> std::sync::MutexGuard<'_, LruShard> {
        shard
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl StepCache for ShardedLruCache {
    fn get(&self, key: &CacheKey) -> Option<StepScores> {
        let found = Self::lock(self.shard(key)).get(key);
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn insert(&self, key: CacheKey, scores: StepScores) {
        let evicted = Self::lock(self.shard(&key)).insert(key, scores);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| Self::lock(s).entries.len())
            .sum()
    }

    fn clear(&self) {
        for s in &self.shards {
            Self::lock(s).clear();
        }
    }

    /// Real traffic counters (the trait default only knows the entry
    /// count).
    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Re-bound the cache to about `capacity` total entries (divided
    /// evenly across shards as in
    /// [`with_shards`](ShardedLruCache::with_shards)), evicting
    /// LRU-first where a shard shrinks. Entries dropped this way count
    /// toward the `evictions` stat.
    fn resize(&self, capacity: usize) -> bool {
        let per_shard = capacity.div_ceil(self.shards.len()).max(1);
        let mut evicted = 0u64;
        for s in &self.shards {
            evicted += Self::lock(s).set_capacity(per_shard) as u64;
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prediction::Candidate;
    use std::sync::Arc;
    use tu_ontology::TypeId;
    use tu_table::Column;

    fn scores(conf: f64) -> StepScores {
        StepScores::from_candidates(vec![Candidate {
            ty: TypeId(1),
            confidence: conf,
        }])
    }

    fn key(n: u64) -> CacheKey {
        CacheKey([avalanche(n), avalanche(n ^ LANE_B_TWEAK)])
    }

    #[test]
    fn stable_hasher_is_deterministic_and_sensitive() {
        let mut a = StableHasher::new();
        a.write_str("hello");
        a.write_u64(7);
        let mut b = StableHasher::new();
        b.write_str("hello");
        b.write_u64(7);
        assert_eq!(a.finish128(), b.finish128());
        let mut c = StableHasher::new();
        c.write_str("hello");
        c.write_u64(8);
        assert_ne!(a.finish128(), c.finish128());
        // Length prefixing: ("ab","c") != ("a","bc").
        let mut d = StableHasher::new();
        d.write_str("ab");
        d.write_str("c");
        let mut e = StableHasher::new();
        e.write_str("a");
        e.write_str("bc");
        assert_ne!(d.finish128(), e.finish128());
        // Value type tags: Int(1) != Text("1").
        let mut f = StableHasher::new();
        f.write_value(&Value::Int(1));
        let mut g = StableHasher::new();
        g.write_value(&Value::Text("1".into()));
        assert_ne!(f.finish128(), g.finish128());
    }

    fn fp_table(name: &str, header: &str, vals: &[&str]) -> Table {
        Table::new(name, vec![Column::from_raw(header, vals)]).unwrap()
    }

    #[test]
    fn fingerprints_track_content_config_epoch_and_step_order() {
        let config = SigmaTyperConfig::default();
        let steps = [StepId::HEADER, StepId::LOOKUP];
        let t = fp_table("t", "city", &["Oslo", "Lima"]);
        let base = column_fingerprints(&t, &steps, &config, 0);
        assert_eq!(base.len(), 1);
        // Deterministic.
        assert_eq!(base, column_fingerprints(&t, &steps, &config, 0));
        // Value change, header change, epoch change, step order change,
        // and config change each move the fingerprint.
        let changed = fp_table("t", "city", &["Oslo", "Kyiv"]);
        assert_ne!(base, column_fingerprints(&changed, &steps, &config, 0));
        let renamed = fp_table("t", "town", &["Oslo", "Lima"]);
        assert_ne!(base, column_fingerprints(&renamed, &steps, &config, 0));
        assert_ne!(base, column_fingerprints(&t, &steps, &config, 1));
        let reordered = [StepId::LOOKUP, StepId::HEADER];
        assert_ne!(base, column_fingerprints(&t, &reordered, &config, 0));
        let tweaked = SigmaTyperConfig {
            cascade_threshold: 0.9,
            ..config
        };
        assert_ne!(base, column_fingerprints(&t, &steps, &tweaked, 0));
    }

    #[test]
    fn chained_hash_state_matches_fresh_rehash() {
        let base = Column::from_raw("city", &["Oslo", "Lima"]);
        let grown = Column::from_raw("city", &["Oslo", "Lima", "Kyiv"]);
        let delta = ColumnDelta::between(&base, &grown);
        let mut state = ColumnHashState::of(&base);
        assert_eq!(
            state.content_hash(),
            ColumnHashState::of(&base).content_hash()
        );
        assert!(state.apply_delta(&grown, &delta), "append must chain");
        assert_eq!(state.chain_len(), 1);
        assert_eq!(state.len(), 3);
        assert_eq!(
            state.content_hash(),
            ColumnHashState::of(&grown).content_hash()
        );
        // Empty deltas neither change the hash nor lengthen the chain.
        let noop = ColumnDelta::between(&grown, &grown.clone());
        assert!(state.apply_delta(&grown, &noop));
        assert_eq!(state.chain_len(), 1);
        // The chained fingerprints equal the fresh ones bit for bit.
        let t = Table::new("t", vec![grown.clone()]).unwrap();
        let config = SigmaTyperConfig::default();
        let steps = [StepId::HEADER, StepId::LOOKUP];
        assert_eq!(
            column_fingerprints_chained(&t, &steps, &config, 3, std::slice::from_ref(&state)),
            column_fingerprints(&t, &steps, &config, 3)
        );
    }

    #[test]
    fn non_append_deltas_collapse_the_chain() {
        let base = Column::from_raw("c", &["a", "b", "c"]);
        let mut state = ColumnHashState::of(&base);
        let grown = Column::from_raw("c", &["a", "b", "c", "d"]);
        assert!(state.apply_delta(&grown, &ColumnDelta::between(&base, &grown)));
        for (name, new) in [
            ("truncated", Column::from_raw("c", &["a", "b"])),
            ("rewritten", Column::from_raw("c", &["x", "b", "c"])),
            ("renamed", Column::from_raw("d", &["a", "b", "c"])),
        ] {
            let mut s = state.clone();
            let chained = s.apply_delta(&new, &ColumnDelta::between(&grown, &new));
            assert!(!chained, "{name} delta must collapse");
            assert_eq!(s.chain_len(), 0, "{name} resets the chain");
            assert_eq!(s.content_hash(), ColumnHashState::of(&new).content_hash());
        }
    }

    #[test]
    fn chain_cap_collapses_to_fresh_rehash() {
        let mut col = Column::from_raw("n", &["0"]);
        let mut state = ColumnHashState::of(&col);
        for i in 1..=MAX_FINGERPRINT_CHAIN {
            let mut grown = col.clone();
            grown.values.push(Value::Int(i as i64));
            let chained = state.apply_delta(&grown, &ColumnDelta::between(&col, &grown));
            assert!(chained, "delta {i} fits under the cap");
            assert_eq!(state.chain_len(), i);
            col = grown;
        }
        // One past the cap: full rehash, chain reset, hash still exact.
        let mut grown = col.clone();
        grown.values.push(Value::Int(-1));
        let chained = state.apply_delta(&grown, &ColumnDelta::between(&col, &grown));
        assert!(!chained, "delta past the cap must collapse");
        assert_eq!(state.chain_len(), 0);
        assert_eq!(
            state.content_hash(),
            ColumnHashState::of(&grown).content_hash()
        );
    }

    #[test]
    fn identical_columns_at_different_indices_differ() {
        let t = Table::new(
            "t",
            vec![
                Column::from_raw("a", &["1", "2"]),
                Column::from_raw("b", &["1", "2"]),
            ],
        )
        .unwrap();
        let fps = column_fingerprints(&t, &[StepId::HEADER], &SigmaTyperConfig::default(), 0);
        assert_ne!(fps[0], fps[1], "neighbor context differs by index");
    }

    #[test]
    fn cache_key_separates_steps() {
        let t = fp_table("t", "c", &["1"]);
        let fp = column_fingerprints(&t, &[StepId::HEADER], &SigmaTyperConfig::default(), 0)[0];
        assert_ne!(
            CacheKey::for_step(fp, StepId::HEADER),
            CacheKey::for_step(fp, StepId::LOOKUP)
        );
        assert_eq!(
            CacheKey::for_step(fp, StepId::HEADER),
            CacheKey::for_step(fp, StepId::HEADER)
        );
        assert_eq!(fp.raw(), fp.raw());
    }

    #[test]
    fn lru_basic_roundtrip_and_stats() {
        let cache = ShardedLruCache::new(64);
        assert!(cache.is_empty());
        assert_eq!(cache.get(&key(1)), None);
        cache.insert(key(1), scores(0.5));
        assert_eq!(cache.get(&key(1)).unwrap().best_confidence(), 0.5);
        // Replacement keeps one entry.
        cache.insert(key(1), scores(0.7));
        assert_eq!(cache.get(&key(1)).unwrap().best_confidence(), 0.7);
        assert_eq!(cache.len(), 1);
        let s = cache.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.inserts, 2);
        assert_eq!(s.evictions, 0);
        assert_eq!(s.entries, 1);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.get(&key(1)), None);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn lru_evicts_least_recently_used_within_capacity() {
        // One shard to make the recency order fully observable.
        let cache = ShardedLruCache::with_shards(3, 1);
        assert_eq!(cache.capacity(), 3);
        for n in 0..3 {
            cache.insert(key(n), scores(0.1));
        }
        // Touch 0 so 1 becomes the LRU entry.
        assert!(cache.get(&key(0)).is_some());
        cache.insert(key(3), scores(0.2));
        assert_eq!(cache.len(), 3);
        assert!(cache.get(&key(1)).is_none(), "LRU entry must be evicted");
        assert!(cache.get(&key(0)).is_some());
        assert!(cache.get(&key(2)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn tiny_capacities_round_up_to_one_per_shard() {
        let cache = ShardedLruCache::with_shards(0, 4);
        assert_eq!(cache.capacity(), 4);
        cache.insert(key(1), scores(0.5));
        assert_eq!(cache.get(&key(1)).unwrap().best_confidence(), 0.5);
        // Shard counts round up to a power of two.
        let cache = ShardedLruCache::with_shards(100, 3);
        assert_eq!(cache.capacity(), 100);
    }

    #[test]
    fn resize_shrinks_lru_first_and_grows_in_place() {
        // One shard to make the recency order fully observable.
        let cache = ShardedLruCache::with_shards(4, 1);
        for n in 0..4 {
            cache.insert(key(n), scores(0.1));
        }
        // MRU order is now 0, 3, 2, 1.
        assert!(cache.get(&key(0)).is_some());
        assert!(cache.resize(2));
        assert_eq!(cache.capacity(), 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 2);
        assert!(cache.get(&key(0)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert!(cache.get(&key(2)).is_none());
        assert!(cache.get(&key(1)).is_none());
        // Growing keeps every surviving entry and restores headroom.
        assert!(cache.resize(8));
        assert_eq!(cache.capacity(), 8);
        assert_eq!(cache.len(), 2);
        for n in 10..16 {
            cache.insert(key(n), scores(0.2));
        }
        assert_eq!(cache.len(), 8);
        // Same-capacity resize is a no-op.
        assert!(cache.resize(8));
        assert_eq!(cache.len(), 8);
    }

    #[test]
    fn trait_defaults_for_epoch_insert_and_resize() {
        /// A minimal backend that accepts the trait defaults.
        #[derive(Debug)]
        struct NullCache;
        impl StepCache for NullCache {
            fn get(&self, _: &CacheKey) -> Option<StepScores> {
                None
            }
            fn insert(&self, _: CacheKey, _: StepScores) {}
            fn len(&self) -> usize {
                0
            }
            fn clear(&self) {}
        }
        let c = NullCache;
        c.insert_with_epoch(key(1), scores(0.5), 7);
        assert!(!c.resize(128), "default resize must decline");
        assert!(c.flush().is_ok());
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn concurrent_readers_and_writers_stay_consistent() {
        // Capacity exceeds the total insert volume (4 × 200 = 800):
        // with a smaller cache, another thread's inserts could evict a
        // key between this thread's insert and its read-back, turning
        // the test flaky under unlucky scheduling.
        let cache = Arc::new(ShardedLruCache::new(2048));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let k = key(t * 1000 + i);
                        cache.insert(k, scores(0.25));
                        assert_eq!(cache.get(&k).map(|s| s.best_confidence()), Some(0.25));
                    }
                });
            }
        });
        assert!(cache.len() <= cache.capacity());
        assert!(cache.stats().hits >= 1);
    }
}
