//! Pipeline step 1: header matching (paper §4.3).
//!
//! Syntactic matching compares the normalized column header to every
//! ontology surface form with fuzzy string similarity — an exact match
//! yields the maximum confidence of 1.0, exactly as the paper specifies.
//! Semantic matching embeds the header and the type names (FastText role
//! → `tu-embed`) and uses cosine similarity as the confidence.

use crate::config::SigmaTyperConfig;
use crate::prediction::{Candidate, StepScores};
use tu_embed::Embedder;
use tu_ontology::{Ontology, TypeId};
use tu_text::{fuzzy_score, normalize_header};

/// The header-matching step with precomputed ontology target vectors.
#[derive(Debug, Clone)]
pub struct HeaderMatcher {
    surfaces: Vec<(String, TypeId)>,
    surface_vectors: Vec<Vec<f32>>,
    /// Similarity floor below which syntactic candidates are dropped.
    pub syntactic_floor: f64,
    /// Similarity floor below which semantic candidates are dropped.
    pub semantic_floor: f64,
}

impl HeaderMatcher {
    /// Build from an ontology and a (trained) embedder.
    #[must_use]
    pub fn new(ontology: &Ontology, embedder: &Embedder) -> Self {
        let surfaces: Vec<(String, TypeId)> = ontology
            .all_surfaces()
            .into_iter()
            .map(|(s, t)| (s.to_owned(), t))
            .collect();
        let surface_vectors = surfaces
            .iter()
            .map(|(s, _)| embedder.phrase_vector(s))
            .collect();
        HeaderMatcher {
            surfaces,
            surface_vectors,
            syntactic_floor: 0.72,
            semantic_floor: 0.45,
        }
    }

    /// Match one header; returns ranked candidates.
    #[must_use]
    pub fn match_header(
        &self,
        header: &str,
        embedder: &Embedder,
        config: &SigmaTyperConfig,
    ) -> StepScores {
        let normalized = normalize_header(header);
        if normalized.is_empty() {
            return StepScores::default();
        }
        let stemmed = tu_text::stem_phrase(&normalized);
        let header_tokens: Vec<String> = normalized.split(' ').map(str::to_owned).collect();
        let mut cands: Vec<Candidate> = Vec::new();

        // Syntactic pass: exact → 1.0 (the paper's "confidence score is
        // set to the maximum being 100%"); singular/plural-exact → 0.97
        // (Figure 4's "Cities: city"); otherwise best of fuzzy score and
        // token containment ("col_salary" contains "salary").
        for (surface, ty) in &self.surfaces {
            if *surface == normalized {
                cands.push(Candidate {
                    ty: *ty,
                    confidence: 1.0,
                });
            } else if *surface == stemmed || tu_text::stem_phrase(surface) == stemmed {
                cands.push(Candidate {
                    ty: *ty,
                    confidence: 0.97,
                });
            } else {
                let mut s = fuzzy_score(&normalized, surface);
                // Containment: every surface token appears among the
                // header tokens — strong evidence for decorated headers.
                let surface_tokens: Vec<&str> = surface.split(' ').collect();
                if surface_tokens
                    .iter()
                    .all(|t| header_tokens.iter().any(|h| h == t))
                {
                    let ratio = surface_tokens.len() as f64 / header_tokens.len() as f64;
                    s = s.max(0.78 + 0.22 * ratio.min(1.0));
                }
                if s >= self.syntactic_floor {
                    // Cap fuzzy (non-exact) confidence at 0.8: only exact
                    // and singular/plural-exact hits may short-circuit the
                    // cascade, so later steps (and the customer's local
                    // knowledge) can still overrule a lookalike alias.
                    cands.push(Candidate {
                        ty: *ty,
                        confidence: s * 0.8,
                    });
                }
            }
        }

        // Semantic pass only when syntactic matching is not confident —
        // mirrors the step's internal escalation and saves embedding cost.
        let best_syntactic = cands.iter().map(|c| c.confidence).fold(0.0f64, f64::max);
        if best_syntactic < config.cascade_threshold {
            let hv = embedder.phrase_vector(&normalized);
            for ((_, ty), sv) in self.surfaces.iter().zip(&self.surface_vectors) {
                let cos = f64::from(tu_embed::cosine(&hv, sv));
                if cos >= self.semantic_floor {
                    // Semantic similarity is softer evidence: like fuzzy
                    // hits it is capped at 0.8 so it can never
                    // short-circuit the cascade on its own.
                    cands.push(Candidate {
                        ty: *ty,
                        confidence: cos * 0.8,
                    });
                }
            }
        }

        let mut scores = StepScores::from_candidates(cands);
        scores.candidates.truncate(config.top_k.max(8));
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tu_ontology::{builtin_id, builtin_ontology};

    fn setup() -> (Ontology, Embedder, HeaderMatcher) {
        let o = builtin_ontology();
        let e = Embedder::untrained(16);
        let m = HeaderMatcher::new(&o, &e);
        (o, e, m)
    }

    #[test]
    fn exact_header_is_certain() {
        let (o, e, m) = setup();
        let s = m.match_header("salary", &e, &SigmaTyperConfig::default());
        let best = s.best().unwrap();
        assert_eq!(best.ty, builtin_id(&o, "salary"));
        assert_eq!(best.confidence, 1.0);
    }

    #[test]
    fn alias_and_casing_resolve_exactly() {
        let (o, e, m) = setup();
        let cfg = SigmaTyperConfig::default();
        for header in ["Income", "INCOME", "income"] {
            let s = m.match_header(header, &e, &cfg);
            assert_eq!(s.best().unwrap().ty, builtin_id(&o, "salary"), "{header}");
            assert_eq!(s.best().unwrap().confidence, 1.0);
        }
        // Abbreviation expansion: DOB → birth date.
        let s = m.match_header("DOB", &e, &cfg);
        assert_eq!(s.best().unwrap().ty, builtin_id(&o, "birth date"));
    }

    #[test]
    fn snake_and_camel_normalize() {
        let (o, e, m) = setup();
        let cfg = SigmaTyperConfig::default();
        for header in ["first_name", "firstName", "First Name", "FIRST_NAME"] {
            let s = m.match_header(header, &e, &cfg);
            assert_eq!(
                s.best().unwrap().ty,
                builtin_id(&o, "first name"),
                "header {header}"
            );
        }
    }

    #[test]
    fn typo_headers_fuzzy_match_below_certainty() {
        let (o, e, m) = setup();
        let s = m.match_header("salry", &e, &SigmaTyperConfig::default());
        let best = s.best().unwrap();
        assert_eq!(best.ty, builtin_id(&o, "salary"));
        assert!(best.confidence < 1.0 && best.confidence > 0.6);
    }

    #[test]
    fn unrelated_headers_score_low() {
        let (_, e, m) = setup();
        let s = m.match_header("xq7_zz", &e, &SigmaTyperConfig::default());
        assert!(
            s.best_confidence() < 0.82,
            "garbage header must not clear the cascade: {:?}",
            s.best()
        );
    }

    #[test]
    fn empty_header_no_candidates() {
        let (_, e, m) = setup();
        let s = m.match_header("  ", &e, &SigmaTyperConfig::default());
        assert!(s.candidates.is_empty());
    }

    #[test]
    fn decorated_headers_still_hit() {
        let (o, e, m) = setup();
        let s = m.match_header("col_salary", &e, &SigmaTyperConfig::default());
        assert_eq!(s.best().unwrap().ty, builtin_id(&o, "salary"));
        assert!(s.best().unwrap().confidence > 0.7);
    }
}
