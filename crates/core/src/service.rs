//! Batch annotation service: the two-level serving front-end.
//!
//! The paper's deployment story (§4, Figure 2) is one shared global
//! model serving many customers; production traffic arrives as
//! *batches* of tables (a data-catalog crawl, a warehouse sync). The
//! [`AnnotationService`] turns one customer's [`SigmaTyper`] into a
//! batch endpoint with a **two-level scheduler** over one shared
//! worker budget:
//!
//! * **Level 1 — tables.** Up to `budget.min(batch)` table workers
//!   pull table indices from a shared queue, so a straggler (one huge
//!   table) never blocks the remaining tables behind a pre-assigned
//!   shard: idle workers keep draining the queue.
//! * **Level 2 — columns.** Each table worker carries its share of
//!   the budget (`budget / workers`, with the division remainder
//!   handed out one thread each to the first workers so nothing is
//!   floored away) into a [`CascadeExecutor`], which may fan a wide
//!   table's step frontier out across column chunks under the
//!   customer's [`ParallelismPolicy`]. A batch of one huge table
//!   therefore uses the *whole* budget on columns instead of pinning
//!   a single worker while the rest idle.
//!
//! Inference is read-only (`SigmaTyper::annotate` takes `&self`) and
//! deterministic, so scheduling changes *nothing* about the output:
//! the annotations are identical to a sequential loop, column for
//! column, candidate for candidate — whatever cascade the customer
//! configured. Only the wall-clock step timings embedded in
//! [`TableAnnotation::timings`] are measurement noise.
//!
//! Workers are `std::thread::scope` threads — no runtime, no extra
//! dependencies — which keeps the service synchronous: the call
//! returns when the whole batch is done.

use crate::cache::{CacheStats, ShardedLruCache, StepCache};
use crate::config::SigmaTyperConfig;
use crate::executor::{CascadeExecutor, ParallelismPolicy};
use crate::global::GlobalModel;
use crate::prediction::TableAnnotation;
use crate::request::{AnnotationOutcome, BudgetLedger, RequestOptions};
use crate::system::SigmaTyper;
use crate::tenant::{ShapedBudget, TrafficShaper, ANONYMOUS_TENANT};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};
use tu_table::Table;

/// Tuning knobs of the [`AnnotationService`] adaptive sizing loop (see
/// [`AnnotationService::with_adaptive_sizing`]). The defaults are
/// deliberately conservative: act only on real per-batch traffic, grow
/// under thrash, shrink only with a wide safety margin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveSizingConfig {
    /// L1 capacity floor — shrinking never goes below this.
    pub min_capacity: usize,
    /// L1 capacity ceiling — growing never goes above this.
    pub max_capacity: usize,
    /// Grow (double) the capacity when a batch's hit rate falls below
    /// this *and* the batch evicted entries: misses caused by churn,
    /// not by cold keys.
    pub grow_below_hit_rate: f64,
    /// Shrink (halve) the capacity when a batch's hit rate is at least
    /// this, nothing was evicted, and occupancy is under a quarter of
    /// the capacity — the working set demonstrably fits in half.
    pub shrink_above_hit_rate: f64,
    /// Halve the worker-thread target when the fraction of degraded
    /// outcomes in a batch exceeds this; a fully clean batch grows the
    /// target back toward the configured thread count.
    pub shed_rate_threshold: f64,
    /// Minimum per-batch lookups (hits + misses) before any capacity
    /// decision — tiny batches are noise.
    pub min_lookups: u64,
}

impl Default for AdaptiveSizingConfig {
    fn default() -> Self {
        AdaptiveSizingConfig {
            min_capacity: 256,
            max_capacity: 1 << 20,
            grow_below_hit_rate: 0.5,
            shrink_above_hit_rate: 0.9,
            shed_rate_threshold: 0.1,
            min_lookups: 64,
        }
    }
}

/// The state of the adaptive sizing loop: current capacity and
/// worker-thread targets plus the [`CacheStats`] baseline the next
/// batch will be diffed against. Shared (`Arc`) across service clones
/// so all of them steer one pair of targets.
#[derive(Debug)]
pub struct AdaptiveSizer {
    config: AdaptiveSizingConfig,
    capacity: AtomicUsize,
    threads: AtomicUsize,
    /// Ceiling for thread-target regrowth: the service's configured
    /// thread count when the sizer was attached.
    max_threads: usize,
    baseline: Mutex<CacheStats>,
}

impl AdaptiveSizer {
    /// A sizer starting from `initial_capacity` (clamped into the
    /// configured bounds) and `max_threads` worker threads.
    ///
    /// The bounds themselves are normalized first (`max_capacity` at
    /// least 1, `min_capacity` at most `max_capacity`), so an inverted
    /// configuration degrades to a sane range instead of panicking in
    /// `clamp` — and every later growth/shrink decision uses the same
    /// normalized bounds, keeping the capacity inside
    /// `[min_capacity, max_capacity]` under any batch sequence.
    #[must_use]
    pub fn new(config: AdaptiveSizingConfig, initial_capacity: usize, max_threads: usize) -> Self {
        let mut config = config;
        config.max_capacity = config.max_capacity.max(1);
        config.min_capacity = config.min_capacity.min(config.max_capacity);
        let capacity = initial_capacity.clamp(config.min_capacity, config.max_capacity);
        AdaptiveSizer {
            config,
            capacity: AtomicUsize::new(capacity),
            threads: AtomicUsize::new(max_threads.max(1)),
            max_threads: max_threads.max(1),
            baseline: Mutex::new(CacheStats::default()),
        }
    }

    /// The current L1 capacity target.
    #[must_use]
    pub fn capacity_target(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// The current worker-thread target (the service additionally
    /// clamps this to its configured thread count at batch start).
    #[must_use]
    pub fn thread_target(&self) -> usize {
        self.threads.load(Ordering::Relaxed)
    }

    /// Decide a new L1 capacity from one batch's traffic delta, or
    /// `None` to hold. **Field forms matter** (see
    /// [`CacheStats::since`]): `hits`/`misses`/`evictions` here are
    /// per-batch deltas, while `entries` is the *current absolute
    /// occupancy* — exactly what the shrink guard needs; treating it
    /// as a delta would make the guard vacuous after any eviction.
    pub fn plan_capacity(&self, delta: &CacheStats) -> Option<usize> {
        if delta.hits + delta.misses < self.config.min_lookups {
            return None;
        }
        let capacity = self.capacity.load(Ordering::Relaxed);
        let hit_rate = delta.hit_rate();
        let target = if delta.evictions > 0 && hit_rate < self.config.grow_below_hit_rate {
            // Thrash: the batch churned the LRU and paid for it in
            // misses. Double, up to the ceiling.
            capacity.saturating_mul(2).min(self.config.max_capacity)
        } else if hit_rate >= self.config.shrink_above_hit_rate
            && delta.evictions == 0
            && delta.entries.saturating_mul(4) <= capacity
        {
            // Comfortably oversized: high hit rate, no pressure, and
            // the resident set fits in a quarter of the bound. Halve —
            // still leaving 2× headroom over current occupancy.
            (capacity / 2).max(self.config.min_capacity)
        } else {
            capacity
        };
        if target == capacity {
            return None;
        }
        self.capacity.store(target, Ordering::Relaxed);
        Some(target)
    }

    /// Update the worker-thread target from one batch's shed rate (the
    /// fraction of outcomes that degraded): over the threshold halves
    /// the target, a fully clean batch doubles it back toward the
    /// configured count.
    pub fn plan_threads(&self, shed_rate: f64) -> usize {
        let current = self.threads.load(Ordering::Relaxed);
        let target = if shed_rate > self.config.shed_rate_threshold {
            (current / 2).max(1)
        } else if shed_rate == 0.0 {
            current.saturating_mul(2).min(self.max_threads)
        } else {
            current
        };
        self.threads.store(target, Ordering::Relaxed);
        target
    }

    /// Diff `stats` against the stored baseline and advance the
    /// baseline to `stats` — one batch's traffic, exactly once.
    fn take_delta(&self, stats: CacheStats) -> CacheStats {
        let mut baseline = self
            .baseline
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let delta = stats.since(&baseline);
        *baseline = stats;
        delta
    }
}

/// The two production traffic classes of the serving front-end
/// (ROADMAP item 5's two-lane scheduling): latency-sensitive
/// interactive requests and throughput-oriented background crawls.
/// Under load the **crawl lane degrades first** — it gets the tighter
/// budget window and the earlier admission cutoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficLane {
    /// A user is waiting on the response: admitted until the queue is
    /// genuinely full, budgeted generously.
    Interactive,
    /// Background/batch traffic: the first to be shed or degraded when
    /// the service saturates.
    Crawl,
}

impl TrafficLane {
    /// Both lanes, in metrics-reporting order.
    pub const ALL: [TrafficLane; 2] = [TrafficLane::Interactive, TrafficLane::Crawl];

    /// Parse a lane label (e.g. from an HTTP header), case-insensitive.
    /// Unknown labels are `None` — callers choose their own default.
    #[must_use]
    pub fn from_label(label: &str) -> Option<TrafficLane> {
        if label.eq_ignore_ascii_case("interactive") {
            Some(TrafficLane::Interactive)
        } else if label.eq_ignore_ascii_case("crawl") {
            Some(TrafficLane::Crawl)
        } else {
            None
        }
    }

    /// The canonical lower-case label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TrafficLane::Interactive => "interactive",
            TrafficLane::Crawl => "crawl",
        }
    }
}

/// One traffic lane's **shared, refilling** budget: a
/// [`BudgetLedger`] per wall-clock window, rolled over when the window
/// elapses. Every request on the lane charges the *same* ledger — the
/// lane as a whole has `window_budget` nanoseconds of step work per
/// window, and when the lane's traffic collectively exhausts it,
/// requests degrade per their [`DegradationPolicy`] until the next
/// window opens. An unbudgeted lane (`window_budget == None`) never
/// rolls and never degrades.
///
/// Cumulative spend (all closed windows plus the live one) is kept for
/// metrics: the serving front-end reports per-lane spend without
/// resetting it.
///
/// [`DegradationPolicy`]: crate::request::DegradationPolicy
#[derive(Debug)]
pub struct LaneLedger {
    lane: TrafficLane,
    window_budget: Option<u64>,
    window: Duration,
    inner: Mutex<LaneWindow>,
    /// Spend accumulated from closed windows (the live window's spend
    /// lives in its ledger).
    rolled_spent: AtomicU64,
}

#[derive(Debug)]
struct LaneWindow {
    ledger: Arc<BudgetLedger>,
    opened: Instant,
    /// Monotone window counter: bumped on every roll. Consumers (the
    /// tenant registry's deficit replenishment) use the sequence to
    /// detect rolls without holding the lock between observations.
    seq: u64,
}

impl LaneLedger {
    /// A lane ledger granting `window_budget` nanoseconds of step work
    /// per `window`. `None` means unbudgeted (the ledger is unbounded
    /// and never rolls).
    #[must_use]
    pub fn new(lane: TrafficLane, window_budget: Option<u64>, window: Duration) -> Self {
        LaneLedger {
            lane,
            window_budget,
            window: window.max(Duration::from_millis(1)),
            inner: Mutex::new(LaneWindow {
                ledger: Arc::new(BudgetLedger::from_budget(window_budget)),
                opened: Instant::now(),
                seq: 0,
            }),
            rolled_spent: AtomicU64::new(0),
        }
    }

    /// Which lane this ledger budgets.
    #[must_use]
    pub fn lane(&self) -> TrafficLane {
        self.lane
    }

    /// The per-window budget (`None` = unbudgeted).
    #[must_use]
    pub fn window_budget(&self) -> Option<u64> {
        self.window_budget
    }

    /// The window length.
    #[must_use]
    pub fn window(&self) -> Duration {
        self.window
    }

    /// The live window's shared ledger, rolling the window first if it
    /// has elapsed. All requests admitted in one window charge the
    /// same returned ledger.
    #[must_use]
    pub fn ledger(&self) -> Arc<BudgetLedger> {
        self.ledger_with_seq().0
    }

    /// The live window's shared ledger plus its window sequence number
    /// (0 for the first window, bumped on every roll). The sequence
    /// lets per-window consumers — the tenant registry's deficit
    /// replenishment — detect exactly how many windows elapsed since
    /// they last looked.
    #[must_use]
    pub fn ledger_with_seq(&self) -> (Arc<BudgetLedger>, u64) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if self.window_budget.is_some() && inner.opened.elapsed() >= self.window {
            // Credit every fully-elapsed window so a long-idle lane
            // replenishes per-window consumers the right number of
            // times, not just once.
            let elapsed = inner.opened.elapsed().as_nanos();
            let window = self.window.as_nanos().max(1);
            let rolls = u64::try_from(elapsed / window).unwrap_or(u64::MAX);
            self.rolled_spent
                .fetch_add(inner.ledger.spent(), Ordering::Relaxed);
            inner.ledger = Arc::new(BudgetLedger::from_budget(self.window_budget));
            inner.opened = Instant::now();
            inner.seq = inner.seq.saturating_add(rolls.max(1));
        }
        (Arc::clone(&inner.ledger), inner.seq)
    }

    /// Wall-clock time until the live window refills (`None` =
    /// unbudgeted, never refills). Zero when the window is already
    /// overdue — the next [`ledger`](LaneLedger::ledger) call rolls it.
    #[must_use]
    pub fn window_remaining(&self) -> Option<Duration> {
        self.window_budget?;
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Some(self.window.saturating_sub(inner.opened.elapsed()))
    }

    /// Cumulative nanoseconds charged on this lane across all windows
    /// (closed windows plus the live one) — monotone, for metrics.
    #[must_use]
    pub fn total_spent_nanos(&self) -> u64 {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.rolled_spent.load(Ordering::Relaxed) + inner.ledger.spent()
    }

    /// Nanoseconds left in the live window (`None` = unbudgeted).
    #[must_use]
    pub fn remaining_nanos(&self) -> Option<u64> {
        self.ledger().remaining()
    }
}

/// Why a [`BoundedQueue`] push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueRejection {
    /// The queue is at capacity — the caller should shed load
    /// (HTTP 503 + `Retry-After`), **never** buffer unboundedly.
    Full,
    /// The queue is closed (service shutting down) — no new work is
    /// admitted.
    Closed,
}

/// A bounded MPMC work queue with explicit backpressure and a drain
/// protocol — the serving front-end's admission point.
///
/// * [`push`](BoundedQueue::push) never blocks and never buffers past
///   `capacity`: a full queue is the caller's signal to shed.
/// * [`pop`](BoundedQueue::pop) blocks until work arrives, and returns
///   `None` only once the queue is **closed and drained** — so worker
///   threads naturally finish every admitted job before exiting, which
///   is exactly the graceful-shutdown contract (no accepted request is
///   dropped).
#[derive(Debug)]
pub struct BoundedQueue<T> {
    capacity: usize,
    inner: Mutex<QueueInner<T>>,
    available: Condvar,
}

#[derive(Debug)]
struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (zero is legal: every
    /// push is refused — useful for forcing the shed path in tests).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            capacity,
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// The admission bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (admitted, not yet popped).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .items
            .len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking admission: `Err(Full)` at capacity, `Err(Closed)`
    /// after [`close`](BoundedQueue::close). The rejected item comes
    /// back to the caller either way.
    pub fn push(&self, item: T) -> Result<(), (T, QueueRejection)> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if inner.closed {
            return Err((item, QueueRejection::Closed));
        }
        if inner.items.len() >= self.capacity {
            return Err((item, QueueRejection::Full));
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocking removal: waits for an item, returns `None` once the
    /// queue is closed **and** drained.
    #[must_use]
    pub fn pop(&self) -> Option<T> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .available
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Close the queue: every subsequent push is refused, and blocked
    /// poppers drain the remaining items then observe `None`.
    pub fn close(&self) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.closed = true;
        drop(inner);
        self.available.notify_all();
    }
}

/// A thread-sharded batch annotation front-end for one customer.
///
/// ```
/// use sigmatyper::{train_global, AnnotationService, SigmaTyperConfig, TrainingConfig};
/// use tu_corpus::{generate_corpus, CorpusConfig};
/// use tu_ontology::builtin_ontology;
///
/// let ontology = builtin_ontology();
/// let corpus = generate_corpus(&ontology, &CorpusConfig::database_like(7, 20));
/// let global = std::sync::Arc::new(train_global(ontology, &corpus, &TrainingConfig::fast()));
/// let service = AnnotationService::new(global, SigmaTyperConfig::default()).with_threads(4);
/// let tables: Vec<_> = corpus.tables.iter().map(|at| at.table.clone()).collect();
/// let annotations = service.annotate_batch(&tables);
/// assert_eq!(annotations.len(), tables.len());
/// ```
#[derive(Debug, Clone)]
pub struct AnnotationService {
    typer: SigmaTyper,
    threads: usize,
    /// Optional adaptive sizing loop (see
    /// [`AnnotationService::with_adaptive_sizing`]); shared across
    /// clones so every front-end steers one pair of targets.
    sizing: Option<Arc<AdaptiveSizer>>,
}

impl AnnotationService {
    /// Build a service for a fresh customer over a shared global model.
    ///
    /// The worker count defaults to the machine's available
    /// parallelism (at least 1).
    #[must_use]
    pub fn new(global: Arc<GlobalModel>, config: SigmaTyperConfig) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        AnnotationService {
            typer: SigmaTyper::new(global, config),
            threads,
            sizing: None,
        }
    }

    /// Wrap an existing customer instance (keeps its local model and
    /// any adaptation it has already accumulated).
    #[must_use]
    pub fn for_customer(typer: SigmaTyper) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        AnnotationService {
            typer,
            threads,
            sizing: None,
        }
    }

    /// Set the worker-thread count.
    ///
    /// Zero workers is a configuration bug: there is no meaningful
    /// "run a batch on no threads". Debug builds assert on it to catch
    /// the bug at the call site; release builds **clamp to 1** and
    /// serve the batch sequentially instead of silently misbehaving
    /// (panicking in production over a config typo would be worse than
    /// degraded parallelism). The clamp is covered by an explicit
    /// release-mode unit test.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        debug_assert!(threads > 0, "with_threads: worker count must be at least 1");
        self.threads = threads.max(1);
        self
    }

    /// Attach a step cache shared by every worker thread (see
    /// [`crate::cache`]): repeat crawls of unchanged tables are served
    /// from memo'd step results, and adaptation through
    /// [`AnnotationService::typer_mut`] invalidates stale entries via
    /// the epoch. Sharing one `Arc` across services pools their
    /// capacity.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<dyn StepCache>) -> Self {
        self.typer.set_step_cache(Some(cache));
        self
    }

    /// Attach the default step-cache backend — a [`ShardedLruCache`]
    /// bounded at `capacity` entries.
    #[must_use]
    pub fn cached(self, capacity: usize) -> Self {
        self.with_cache(Arc::new(ShardedLruCache::new(capacity)))
    }

    /// Enable the adaptive sizing loop: after every batch the service
    /// diffs the attached cache's [`CacheStats`] (via
    /// [`CacheStats::since`]) and the batch's degradation rate, then
    /// re-aims two knobs:
    ///
    /// * **L1 capacity** — doubled when a batch thrashes (evictions
    ///   plus a hit rate below
    ///   [`grow_below_hit_rate`](AdaptiveSizingConfig::grow_below_hit_rate)),
    ///   halved when the resident set is comfortably small at a high
    ///   hit rate; applied through [`StepCache::resize`], so it reaches
    ///   the in-memory LRU (or the L1 of a
    ///   [`TieredStepCache`](crate::diskcache::TieredStepCache) — the
    ///   disk tier is unbounded and unaffected).
    /// * **worker threads** — halved when more than
    ///   [`shed_rate_threshold`](AdaptiveSizingConfig::shed_rate_threshold)
    ///   of a request batch degraded (the machine is oversubscribed —
    ///   more workers burning one shared budget would only shed more),
    ///   regrown toward the configured count on clean batches.
    ///
    /// `initial_capacity` should match the attached cache's bound.
    /// Attach *after* [`with_threads`](AnnotationService::with_threads)
    /// so the regrowth ceiling snapshots the intended thread count.
    /// Sizing is deterministic in the observed stats; it never changes
    /// annotation *results*, only cache bound and parallelism.
    #[must_use]
    pub fn with_adaptive_sizing(
        mut self,
        config: AdaptiveSizingConfig,
        initial_capacity: usize,
    ) -> Self {
        self.sizing = Some(Arc::new(AdaptiveSizer::new(
            config,
            initial_capacity,
            self.threads,
        )));
        self
    }

    /// The adaptive sizer, when
    /// [`with_adaptive_sizing`](AnnotationService::with_adaptive_sizing)
    /// was configured — for observing the current capacity and thread
    /// targets.
    #[must_use]
    pub fn adaptive_sizer(&self) -> Option<&Arc<AdaptiveSizer>> {
        self.sizing.as_ref()
    }

    /// Set the customer's intra-table [`ParallelismPolicy`] — when a
    /// table worker may fan a step's pending columns out across its
    /// budget share (see the [module docs](self) for the two-level
    /// split). Execution strategy only: output is bit-identical under
    /// any policy.
    #[must_use]
    pub fn with_parallelism(mut self, policy: ParallelismPolicy) -> Self {
        self.typer.config_mut().parallelism = policy;
        self
    }

    /// The configured worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The customer instance behind this service.
    #[must_use]
    pub fn typer(&self) -> &SigmaTyper {
        &self.typer
    }

    /// Mutable access to the customer instance, for feedback and
    /// configuration between batches. Adaptation is a customer-local,
    /// single-writer operation in the paper's design, so it happens
    /// between batches, never concurrently with one.
    pub fn typer_mut(&mut self) -> &mut SigmaTyper {
        &mut self.typer
    }

    /// Annotate a batch of tables under the two-level scheduler (see
    /// the [module docs](self)): table workers pull from a shared
    /// queue, each carrying its share of the worker budget for
    /// intra-table column chunks. Results are in input order and
    /// identical to calling [`SigmaTyper::annotate`] in a loop —
    /// whatever cascade the customer instance is configured with
    /// (standard, reordered, or carrying custom registered steps) runs
    /// unchanged on every worker.
    ///
    /// Output order matches input order exactly. Degenerate shapes
    /// stay graceful: an empty batch returns immediately, a
    /// single-worker budget runs inline with no spawn at all, and a
    /// batch smaller than the budget hands the leftover threads to the
    /// column level instead of idling them.
    #[must_use]
    pub fn annotate_batch(&self, tables: &[Table]) -> Vec<TableAnnotation> {
        let annotations = two_level_annotate(&self.typer, tables, self.effective_threads());
        // Plain batches never degrade (no budget), so the shed rate
        // is 0 — thread targets only regrow here.
        self.adapt_after_batch(0, tables.len());
        annotations
    }

    /// Request-level batch annotation: the same two-level scheduler,
    /// but under one **shared** [`BudgetLedger`] resolved from
    /// `options` — the whole batch gets one budget, charged by every
    /// worker as it annotates. When the ledger runs dry, an overloaded
    /// batch *degrades* per the [`DegradationPolicy`] (remaining
    /// tables shed their expensive tail steps, or everything past the
    /// exhaustion point under a fully spent ledger) instead of
    /// queueing — the paper's interactive-latency stance. Each
    /// returned [`AnnotationOutcome`] carries its own
    /// [`DegradationReport`] (per-table spend, batch-wide remainder),
    /// in input order.
    ///
    /// With default options (`Strict`, unbounded) every annotation is
    /// bit-identical to [`AnnotationService::annotate_batch`]. The
    /// request's `parallelism` override replaces the customer's
    /// configured policy for this batch; `column_threads` is ignored
    /// (the scheduler owns the thread split).
    ///
    /// [`DegradationPolicy`]: crate::request::DegradationPolicy
    /// [`DegradationReport`]: crate::request::DegradationReport
    #[must_use]
    pub fn annotate_batch_request(
        &self,
        tables: &[Table],
        options: &RequestOptions,
    ) -> Vec<AnnotationOutcome> {
        self.annotate_batch_request_with_bases(tables, &vec![None; tables.len()], options)
    }

    /// [`annotate_batch_request`](AnnotationService::annotate_batch_request)
    /// for **incremental recrawls**: `bases[i]` is the previously
    /// annotated version of `tables[i]` (or `None` for a first crawl).
    /// Each table with a base runs the delta-aware path of
    /// [`SigmaTyper::annotate_request_shared_with_base`] — chained
    /// fingerprints instead of full rehashes, and per-step reuse of
    /// the base crawl's cached scores for columns whose delta movement
    /// stays under the sensitivity threshold (`options`'
    /// `delta_sensitivity`, defaulting to the customer config). At
    /// sensitivity 0 the batch is bit-identical to a from-scratch
    /// [`annotate_batch_request`](AnnotationService::annotate_batch_request).
    ///
    /// `bases` is positional and must be exactly as long as `tables`.
    #[must_use]
    pub fn annotate_batch_request_with_bases(
        &self,
        tables: &[Table],
        bases: &[Option<&Table>],
        options: &RequestOptions,
    ) -> Vec<AnnotationOutcome> {
        let (budget, _) = options.resolved();
        let ledger = BudgetLedger::from_budget(budget);
        self.annotate_batch_request_on_ledger(tables, bases, options, &ledger)
    }

    /// The shared-ledger core of the request-level batch entry points:
    /// run the batch charging the **caller-provided** ledger instead of
    /// resolving a fresh one from `options`. This is how a serving
    /// front-end makes a batch draw on a lane window ledger (all
    /// concurrent lane traffic collectively drains one budget) or on a
    /// tenant-capped local ledger — `options.budget_nanos` is ignored
    /// here; the ledger *is* the budget.
    ///
    /// `bases` is positional and must be exactly as long as `tables`.
    #[must_use]
    pub fn annotate_batch_request_on_ledger(
        &self,
        tables: &[Table],
        bases: &[Option<&Table>],
        options: &RequestOptions,
        ledger: &BudgetLedger,
    ) -> Vec<AnnotationOutcome> {
        assert_eq!(
            tables.len(),
            bases.len(),
            "one base slot (Some or None) per table"
        );
        let policy = options
            .parallelism
            .unwrap_or(self.typer.config().parallelism);
        let outcomes = two_level_run(
            &self.typer,
            tables,
            self.effective_threads(),
            policy,
            &|typer, i, table, executor| {
                typer.annotate_request_shared_with_base(table, bases[i], executor, options, ledger)
            },
        );
        let degraded = outcomes.iter().filter(|o| o.degraded()).count();
        self.adapt_after_batch(degraded, outcomes.len());
        outcomes
    }

    /// Traffic-shaped batch annotation: resolve the request's budget
    /// through `shaper` ([`TrafficShaper::request_budget`] — lane
    /// window remainder ∧ tenant fairness cap ∧ explicit request
    /// budget), run the batch on the granted ledger, then settle the
    /// spend back into lane, tenant, and serving counters. The tenant
    /// is taken from `options.tenant`, defaulting to the shaper's
    /// [`ANONYMOUS_TENANT`] account;
    /// every returned [`DegradationReport`] echoes it.
    ///
    /// When shaping imposes nothing — unbudgeted request, tenant in
    /// quota with the lane window as the tighter bound — the batch
    /// charges the lane's shared window ledger exactly as an unshapen
    /// request would, so results are bit-identical to the unshapen
    /// path. Shaping changes scheduling and shedding, never results.
    ///
    /// [`DegradationReport`]: crate::request::DegradationReport
    #[must_use]
    pub fn annotate_batch_request_shaped(
        &self,
        tables: &[Table],
        bases: &[Option<&Table>],
        options: &RequestOptions,
        shaper: &TrafficShaper,
        lane: TrafficLane,
    ) -> Vec<AnnotationOutcome> {
        let tenant = options
            .tenant
            .unwrap_or_else(|| shaper.registry().intern(ANONYMOUS_TENANT));
        let mut options = *options;
        options.tenant = Some(tenant);
        let (budget, _) = options.resolved();
        let grant = shaper.request_budget(lane, tenant, budget);
        let outcomes = match &grant {
            ShapedBudget::Shared(ledger) => {
                self.annotate_batch_request_on_ledger(tables, bases, &options, ledger)
            }
            ShapedBudget::Local { cap_nanos, .. } => {
                let local = BudgetLedger::bounded(*cap_nanos);
                self.annotate_batch_request_on_ledger(tables, bases, &options, &local)
            }
        };
        let spent: u64 = outcomes
            .iter()
            .map(|o| o.degradation.spent_nanos)
            .fold(0, u64::saturating_add);
        let degraded = outcomes.iter().filter(|o| o.degraded()).count() as u64;
        let delta_reused = outcomes
            .iter()
            .map(|o| o.degradation.delta_reused as u64)
            .fold(0, u64::saturating_add);
        shaper.settle(lane, tenant, &grant, spent, degraded, delta_reused);
        outcomes
    }

    /// Aggregate counters of the attached step cache (`None` when the
    /// service is uncached): hits, misses, inserts, evictions, and the
    /// current entry count — what an operator needs to size the LRU,
    /// without scraping per-table [`StepTiming`] records. Snapshot a
    /// baseline before a batch and diff with [`CacheStats::since`] for
    /// per-batch totals.
    ///
    /// [`StepTiming`]: crate::prediction::StepTiming
    #[must_use]
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.typer.step_cache().map(|cache| cache.stats())
    }

    /// Flush the attached step cache's durable state (a no-op for
    /// purely in-memory caches and uncached services): the
    /// graceful-shutdown hook — after this returns, a tiered cache's
    /// disk segment is synced and a warm restart serves hits.
    pub fn flush(&self) -> std::io::Result<()> {
        match self.typer.step_cache() {
            Some(cache) => cache.flush(),
            None => Ok(()),
        }
    }

    /// The worker budget for the next batch: the configured thread
    /// count, reduced (never raised) by the adaptive sizer's target.
    fn effective_threads(&self) -> usize {
        self.sizing
            .as_ref()
            .map_or(self.threads, |s| s.thread_target().clamp(1, self.threads))
    }

    /// One turn of the sizing loop after a batch: diff the cache
    /// stats, re-aim the capacity target (applying it through
    /// [`StepCache::resize`]) and the thread target.
    fn adapt_after_batch(&self, degraded: usize, total: usize) {
        let Some(sizer) = &self.sizing else { return };
        if total == 0 {
            return;
        }
        if let Some(cache) = self.typer.step_cache() {
            let delta = sizer.take_delta(cache.stats());
            if let Some(capacity) = sizer.plan_capacity(&delta) {
                cache.resize(capacity);
            }
        }
        sizer.plan_threads(degraded as f64 / total as f64);
    }
}

/// The annotation-returning scheduler used by the classic batch entry
/// points: [`two_level_run`] with the customer's configured policy and
/// plain [`SigmaTyper::annotate_with`].
fn two_level_annotate(typer: &SigmaTyper, tables: &[Table], budget: usize) -> Vec<TableAnnotation> {
    let policy = typer.config().parallelism;
    two_level_run(
        typer,
        tables,
        budget,
        policy,
        &|typer, _, table, executor| typer.annotate_with(table, executor),
    )
}

/// The shared scheduling core: `budget` worker threads split across
/// table workers (level 1, dynamic queue) and per-worker column
/// budgets (level 2, handed to the [`CascadeExecutor`]), output in
/// input order. Generic over what one table's annotation produces, so
/// the plain and request-level batch entry points share one scheduler.
fn two_level_run<T: Send + Sync>(
    typer: &SigmaTyper,
    tables: &[Table],
    budget: usize,
    policy: ParallelismPolicy,
    annotate_one: &(dyn Fn(&SigmaTyper, usize, &Table, &CascadeExecutor) -> T + Sync),
) -> Vec<T> {
    let n = tables.len();
    if n == 0 {
        return Vec::new();
    }
    let budget = budget.max(1);
    let outer = budget.min(n);
    // Level 2 budgets: the threads level 1 leaves on the table — a
    // 1-table batch on an 8-thread budget puts all 8 on columns. The
    // division remainder is handed out one thread each to the first
    // workers instead of being floored away, so the whole budget is
    // always accounted for (8 threads over 5 tables: three workers
    // get a 2-thread column budget, two get 1).
    let executor_for =
        |worker: usize| CascadeExecutor::new(policy, column_budget(budget, outer, worker));
    if outer == 1 {
        let executor = executor_for(0);
        return tables
            .iter()
            .enumerate()
            .map(|(i, t)| annotate_one(typer, i, t, &executor))
            .collect();
    }
    // Level 1: a dynamic queue instead of pre-cut shards, so one slow
    // (huge) table delays only the worker that holds it — the others
    // keep draining the queue. Each result lands in its input-index
    // slot, so output order is position-stable by construction.
    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<T>> = (0..n).map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        // `move` closures below take the (Copy) executor by value and
        // these shared handles by reference.
        let (next, slots) = (&next, &slots);
        for worker in 0..outer {
            let executor = executor_for(worker);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let ann = annotate_one(typer, i, &tables[i], &executor);
                assert!(
                    slots[i].set(ann).is_ok(),
                    "queue indices are unique; every slot is filled exactly once"
                );
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot filled"))
        .collect()
}

/// The level-2 share of one table worker: `budget / outer`, with the
/// division remainder handed out one thread each to the first workers
/// — the shares always sum to exactly `budget`, so no thread of the
/// budget is floored away.
fn column_budget(budget: usize, outer: usize, worker: usize) -> usize {
    let base = budget / outer;
    (base + usize::from(worker < budget % outer)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainingConfig;
    use crate::global::train_global;
    use std::sync::OnceLock;
    use tu_corpus::{generate_corpus, CorpusConfig};
    use tu_ontology::builtin_ontology;
    use tu_table::Column;

    fn global() -> Arc<GlobalModel> {
        static GLOBAL: OnceLock<Arc<GlobalModel>> = OnceLock::new();
        GLOBAL
            .get_or_init(|| {
                let ontology = builtin_ontology();
                let corpus = generate_corpus(&ontology, &CorpusConfig::database_like(0x5E, 40));
                Arc::new(train_global(ontology, &corpus, &TrainingConfig::fast()))
            })
            .clone()
    }

    fn batch(seed: u64, n: usize) -> Vec<Table> {
        let o = builtin_ontology();
        generate_corpus(&o, &CorpusConfig::database_like(seed, n))
            .tables
            .into_iter()
            .map(|at| at.table)
            .collect()
    }

    /// Everything except the wall-clock `step_nanos` must match bit
    /// for bit: same predictions, same confidences, same candidates,
    /// same cascade trace.
    fn assert_identical(a: &TableAnnotation, b: &TableAnnotation) {
        assert_eq!(a.columns.len(), b.columns.len());
        for (ca, cb) in a.columns.iter().zip(&b.columns) {
            assert_eq!(ca.col_idx, cb.col_idx);
            assert_eq!(ca.predicted, cb.predicted);
            assert_eq!(ca.confidence.to_bits(), cb.confidence.to_bits());
            assert_eq!(ca.top_k, cb.top_k);
            assert_eq!(ca.steps_run, cb.steps_run);
            assert_eq!(ca.step_scores.len(), cb.step_scores.len());
            for (sa, sb) in ca.step_scores.iter().zip(&cb.step_scores) {
                assert_eq!(sa.candidates, sb.candidates);
            }
        }
    }

    /// `table` after a recrawl that appended `extra` rows (recycled
    /// from the head of each column, so the appends look like more of
    /// the same data).
    fn recrawled(table: &Table, extra: usize) -> Table {
        let columns = table
            .columns()
            .iter()
            .map(|c| {
                let mut values = c.values.clone();
                for i in 0..extra {
                    values.push(c.values[i % c.values.len()].clone());
                }
                Column::new(c.name.clone(), values)
            })
            .collect();
        Table::new(table.name.clone(), columns).expect("still rectangular")
    }

    #[test]
    fn batch_with_bases_reuses_base_scores_and_is_exact_at_zero_sensitivity() {
        use crate::request::RequestOptions;
        let service = AnnotationService::new(global(), SigmaTyperConfig::default())
            .with_threads(4)
            .cached(1 << 14);
        let bases = batch(0xBA5E, 4);
        let _ = service.annotate_batch_request(&bases, &RequestOptions::default());
        let tables: Vec<Table> = bases.iter().map(|t| recrawled(t, 1)).collect();
        let base_refs: Vec<Option<&Table>> = bases.iter().map(Some).collect();

        // A generous sensitivity: the one-row appends reuse the base
        // crawl's cached scores instead of re-running cacheable steps.
        let relaxed = RequestOptions::default().with_delta_sensitivity(0.5);
        let reusing = service.annotate_batch_request_with_bases(&tables, &base_refs, &relaxed);
        let reused: usize = reusing.iter().map(|o| o.degradation.delta_reused).sum();
        assert!(reused > 0, "small appends must reuse base-crawl scores");

        // Sensitivity 0 turns reuse off entirely and is bit-identical
        // to annotating the recrawled tables from scratch.
        let zero = RequestOptions::default().with_delta_sensitivity(0.0);
        let strict = service.annotate_batch_request_with_bases(&tables, &base_refs, &zero);
        let uncached_service = AnnotationService::new(global(), SigmaTyperConfig::default());
        let fresh = uncached_service.annotate_batch_request(&tables, &RequestOptions::default());
        for (a, b) in strict.iter().zip(&fresh) {
            assert_eq!(a.degradation.delta_reused, 0, "sensitivity 0 never reuses");
            assert_identical(&a.annotation, &b.annotation);
        }

        // Bases are positional: a length mismatch is a caller bug.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            service.annotate_batch_request_with_bases(&tables, &base_refs[..1], &zero)
        }));
        assert!(result.is_err(), "mismatched bases length must panic");
    }

    #[test]
    fn batch_identical_to_sequential_across_thread_counts() {
        let service = AnnotationService::new(global(), SigmaTyperConfig::default());
        let tables = batch(0xBA7C4, 11);
        let sequential: Vec<TableAnnotation> =
            tables.iter().map(|t| service.typer().annotate(t)).collect();
        for threads in [1, 2, 8] {
            let sharded = service
                .clone()
                .with_threads(threads)
                .annotate_batch(&tables);
            assert_eq!(sharded.len(), sequential.len(), "threads={threads}");
            for (s, q) in sharded.iter().zip(&sequential) {
                assert_identical(s, q);
            }
        }
    }

    #[test]
    fn output_preserves_input_order() {
        let service = AnnotationService::new(global(), SigmaTyperConfig::default()).with_threads(4);
        // Tables with a recognizable column-count fingerprint.
        let o = builtin_ontology();
        let mut tables = Vec::new();
        for seed in 0..9u64 {
            let corpus = generate_corpus(&o, &CorpusConfig::database_like(0xF0 + seed, 1));
            tables.push(corpus.tables[0].table.clone());
        }
        let widths: Vec<usize> = tables.iter().map(tu_table::Table::n_cols).collect();
        let anns = service.annotate_batch(&tables);
        let got: Vec<usize> = anns.iter().map(|a| a.columns.len()).collect();
        assert_eq!(got, widths, "shard k must write the k-th output chunk");
    }

    #[test]
    fn degenerate_batches() {
        let service = AnnotationService::new(global(), SigmaTyperConfig::default()).with_threads(8);
        assert!(service.annotate_batch(&[]).is_empty());
        // Fewer tables than threads: no worker may receive an empty shard.
        let tables = batch(0x10, 2);
        assert!(tables.len() < service.threads());
        let anns = service.annotate_batch(&tables);
        assert_eq!(anns.len(), tables.len());
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "worker count must be at least 1")
    )]
    fn zero_threads_asserts_in_debug_and_clamps_in_release() {
        let service = AnnotationService::new(global(), SigmaTyperConfig::default()).with_threads(0);
        // Release builds reach this point and clamp instead.
        assert_eq!(service.threads(), 1);
        let tables = batch(0x11, 3);
        assert_eq!(service.annotate_batch(&tables).len(), 3);
    }

    /// Explicit release-path coverage for the `with_threads(0)` clamp
    /// (`cargo test --release`): no debug assert fires, the count
    /// clamps to 1, and the clamped service produces output identical
    /// to an explicitly sequential one.
    #[test]
    #[cfg(not(debug_assertions))]
    fn zero_threads_clamps_to_one_in_release() {
        let service = AnnotationService::new(global(), SigmaTyperConfig::default()).with_threads(0);
        assert_eq!(service.threads(), 1);
        let tables = batch(0x2B, 4);
        let clamped = service.annotate_batch(&tables);
        let sequential = service.clone().with_threads(1).annotate_batch(&tables);
        assert_eq!(clamped.len(), sequential.len());
        for (a, b) in clamped.iter().zip(&sequential) {
            assert_identical(a, b);
        }
    }

    #[test]
    fn workers_share_one_step_cache() {
        let service = AnnotationService::new(global(), SigmaTyperConfig::default())
            .with_threads(4)
            .cached(1 << 14);
        let tables = batch(0xCAC4E, 9);
        // Cold batch populates; warm batch is served from cache and
        // stays bit-identical (the golden contract) across workers.
        // The header step opted out of memoization (cache admission),
        // so it re-runs on every crawl and is counted separately.
        let cold = service.annotate_batch(&tables);
        use crate::prediction::StepId;
        let runs = |anns: &[TableAnnotation]| -> usize {
            anns.iter()
                .flat_map(|a| a.timings.iter())
                .filter(|t| t.step != StepId::HEADER)
                .map(|t| t.columns)
                .sum()
        };
        let header_runs = |anns: &[TableAnnotation]| -> usize {
            anns.iter()
                .flat_map(|a| a.timings.iter())
                .filter(|t| t.step == StepId::HEADER)
                .map(|t| t.columns)
                .sum()
        };
        let hits = |anns: &[TableAnnotation]| -> usize {
            anns.iter()
                .flat_map(|a| a.timings.iter().map(|t| t.cache_hits))
                .sum()
        };
        assert!(runs(&cold) > 0);
        assert_eq!(hits(&cold), 0);
        let warm = service.annotate_batch(&tables);
        assert_eq!(
            runs(&warm),
            0,
            "warm recrawl must skip every cacheable step run"
        );
        assert_eq!(hits(&warm), runs(&cold));
        assert_eq!(
            header_runs(&warm),
            header_runs(&cold),
            "the non-cacheable header step re-runs its frontier"
        );
        for (a, b) in cold.iter().zip(&warm) {
            assert_identical(a, b);
        }
        // The cache is one shared store, not per-worker copies.
        let cache = service.typer().step_cache().expect("cache configured");
        assert!(!cache.is_empty());
    }

    /// Two-level budget split: a batch smaller than the worker budget
    /// hands the leftover threads to the column level, so a lone wide
    /// table is chunked instead of pinning one worker while the other
    /// threads idle.
    #[test]
    fn lone_wide_table_gets_the_whole_budget_as_column_chunks() {
        let service = AnnotationService::new(global(), SigmaTyperConfig::default())
            .with_threads(4)
            .with_parallelism(ParallelismPolicy::PerTableThreshold { min_columns: 2 });
        // Opaque headers keep a wide frontier alive past the header step.
        let columns: Vec<tu_table::Column> = (0..8)
            .map(|i| {
                tu_table::Column::from_raw(
                    format!("xq_{i}"),
                    &["lorem ipsum", "dolor sit", "amet consect"],
                )
            })
            .collect();
        let wide = Table::new("wide", columns).unwrap();
        let anns = service.annotate_batch(std::slice::from_ref(&wide));
        assert_eq!(anns.len(), 1);
        assert!(
            anns[0].timings.iter().any(|t| t.chunks >= 2),
            "a 1-table batch on a 4-thread budget must chunk columns: {:?}",
            anns[0]
                .timings
                .iter()
                .map(|t| (t.name.clone(), t.columns, t.chunks))
                .collect::<Vec<_>>()
        );
        // And the chunked result is bit-identical to a sequential one.
        let sequential = AnnotationService::new(global(), SigmaTyperConfig::default())
            .with_threads(1)
            .with_parallelism(ParallelismPolicy::Off);
        assert_identical(&sequential.annotate_batch(&[wide])[0], &anns[0]);
    }

    /// The level-2 budget split: shares sum to exactly the budget
    /// (the division remainder goes one thread each to the first
    /// workers), so a batch between budget/2 and budget still carries
    /// column parallelism on some workers instead of idling threads.
    #[test]
    fn budget_remainder_reaches_the_column_level() {
        // 8 threads over 5 table workers: 2+2+2+1+1.
        let shares: Vec<usize> = (0..5).map(|w| column_budget(8, 5, w)).collect();
        assert_eq!(shares, vec![2, 2, 2, 1, 1]);
        assert_eq!(shares.iter().sum::<usize>(), 8);
        // Even splits stay even; a lone table gets the whole budget.
        assert_eq!((0..4).map(|w| column_budget(8, 4, w)).sum::<usize>(), 8);
        assert_eq!(column_budget(8, 1, 0), 8);
        // More workers than budget can never hand out a zero share.
        assert!((0..4).all(|w| column_budget(3, 4, w) >= 1));

        // Behavior: a 5-table batch on an 8-thread budget stays
        // bit-identical to the sequential pass whatever worker picked
        // up which table (chunked or not).
        let service = AnnotationService::new(global(), SigmaTyperConfig::default())
            .with_threads(8)
            .with_parallelism(ParallelismPolicy::PerTableThreshold { min_columns: 2 });
        let mk_wide = |seed: usize| {
            let columns: Vec<tu_table::Column> = (0..6)
                .map(|i| {
                    tu_table::Column::from_raw(
                        format!("xq_{seed}_{i}"),
                        &["lorem ipsum", "dolor sit", "amet consect"],
                    )
                })
                .collect();
            Table::new(format!("wide_{seed}"), columns).unwrap()
        };
        let tables: Vec<Table> = (0..5).map(mk_wide).collect();
        let anns = service.annotate_batch(&tables);
        assert_eq!(anns.len(), 5);
        let sequential = AnnotationService::new(global(), SigmaTyperConfig::default())
            .with_threads(1)
            .with_parallelism(ParallelismPolicy::Off);
        for (a, b) in anns.iter().zip(&sequential.annotate_batch(&tables)) {
            assert_identical(a, b);
        }
    }

    /// The dynamic table queue plus column parallelism must preserve
    /// input order and bit-identity on mixed batches (wide and narrow
    /// tables interleaved, batch larger than the budget).
    #[test]
    fn two_level_scheduler_matches_sequential_on_mixed_batches() {
        let service = AnnotationService::new(global(), SigmaTyperConfig::default())
            .with_threads(3)
            .with_parallelism(ParallelismPolicy::FixedChunk { columns: 2 });
        let mut tables = batch(0x31, 7);
        let wide_cols: Vec<tu_table::Column> = (0..9)
            .map(|i| tu_table::Column::from_raw(format!("zz_{i}"), &["alpha beta", "gamma delta"]))
            .collect();
        tables.insert(3, Table::new("wide", wide_cols).unwrap());
        let sequential: Vec<TableAnnotation> =
            tables.iter().map(|t| service.typer().annotate(t)).collect();
        let scheduled = service.annotate_batch(&tables);
        assert_eq!(scheduled.len(), sequential.len());
        for (s, q) in scheduled.iter().zip(&sequential) {
            assert_identical(s, q);
        }
    }

    #[test]
    fn batch_serves_custom_cascades() {
        use crate::prediction::StepId;
        use crate::step::RegexOnlyStep;
        use crate::system::SigmaTyper;
        // A cascade with the regex-only step ahead of lookup, served
        // sharded: the batch front-end must run the customer's cascade,
        // not the hardcoded three steps.
        let typer = SigmaTyper::builder(global())
            .step_at(1, RegexOnlyStep)
            .build();
        let service = AnnotationService::for_customer(typer).with_threads(4);
        let o = builtin_ontology();
        let mk = |i: u64| {
            Table::new(
                format!("t{i}"),
                vec![tu_table::Column::from_raw(
                    "xq7_zz",
                    &["ada@x.com", "bob@y.org", "eve@z.net"],
                )],
            )
            .unwrap()
        };
        let tables: Vec<Table> = (0..6).map(mk).collect();
        let anns = service.annotate_batch(&tables);
        for ann in &anns {
            assert_eq!(
                ann.columns[0].predicted,
                tu_ontology::builtin_id(&o, "email")
            );
            assert_eq!(
                ann.columns[0].resolving_step(service.typer().config().cascade_threshold),
                Some(StepId::REGEX_ONLY)
            );
            assert_eq!(ann.timings.len(), 4);
        }
    }

    #[test]
    fn batch_request_with_defaults_matches_annotate_batch() {
        use crate::request::forced_step_budget_nanos;
        // The default request resolves the forced environment budget;
        // equivalence with the unbudgeted path only holds without it
        // (the forced-budget CI leg runs its own suite).
        if forced_step_budget_nanos().is_some() {
            return;
        }
        let service = AnnotationService::new(global(), SigmaTyperConfig::default()).with_threads(4);
        let tables = batch(0xB0D6, 7);
        let plain = service.annotate_batch(&tables);
        let outcomes = service.annotate_batch_request(&tables, &RequestOptions::default());
        assert_eq!(outcomes.len(), plain.len());
        for (outcome, ann) in outcomes.iter().zip(&plain) {
            assert!(!outcome.degraded());
            assert_eq!(outcome.degradation.budget_nanos, None);
            assert_identical(&outcome.annotation, ann);
        }
    }

    #[test]
    fn exhausted_batch_budget_degrades_instead_of_queueing() {
        use crate::request::{DegradationPolicy, RequestOptions};
        let service = AnnotationService::new(global(), SigmaTyperConfig::default()).with_threads(3);
        let tables = batch(0xDE6, 6);
        let options = RequestOptions::default()
            .with_budget_nanos(0)
            .with_policy(DegradationPolicy::DropTailSteps);
        let outcomes = service.annotate_batch_request(&tables, &options);
        assert_eq!(outcomes.len(), tables.len());
        for (outcome, table) in outcomes.iter().zip(&tables) {
            // Zero budget: every table in the batch sheds its whole
            // cascade — deterministically, whatever worker got it.
            assert!(outcome.degraded() || table.n_cols() == 0);
            assert_eq!(outcome.annotation.columns.len(), table.n_cols());
            for col in &outcome.annotation.columns {
                assert!(col.abstained(), "degradation must abstain, not fabricate");
                assert!(col.steps_run.is_empty());
            }
            assert_eq!(outcome.degradation.remaining_nanos, Some(0));
        }
    }

    #[test]
    fn batch_request_shares_one_ledger() {
        use crate::request::{DegradationPolicy, RequestOptions};
        let service = AnnotationService::new(global(), SigmaTyperConfig::default()).with_threads(2);
        let tables = batch(0x5A1, 5);
        // A generous shared budget: nothing degrades, but every
        // table's report shows the same batch-wide ledger draining.
        let options = RequestOptions::default()
            .with_budget_nanos(u64::MAX / 2)
            .with_policy(DegradationPolicy::DropTailSteps);
        let outcomes = service.annotate_batch_request(&tables, &options);
        let total_spent: u64 = outcomes.iter().map(|o| o.degradation.spent_nanos).sum();
        assert!(total_spent > 0);
        for outcome in &outcomes {
            assert!(!outcome.degraded());
            assert_eq!(outcome.degradation.budget_nanos, Some(u64::MAX / 2));
            let remaining = outcome.degradation.remaining_nanos.unwrap();
            // Each table saw the shared ledger at or below the full
            // budget minus its own spend.
            assert!(remaining <= u64::MAX / 2 - outcome.degradation.spent_nanos);
        }
    }

    #[test]
    fn cache_stats_snapshot_and_per_batch_delta() {
        let uncached = AnnotationService::new(global(), SigmaTyperConfig::default());
        assert!(uncached.cache_stats().is_none());

        let service = AnnotationService::new(global(), SigmaTyperConfig::default())
            .with_threads(4)
            .cached(1 << 14);
        let empty = service.cache_stats().expect("cache attached");
        assert_eq!(
            (empty.hits, empty.misses, empty.inserts, empty.entries),
            (0, 0, 0, 0)
        );

        let tables = batch(0xCA57, 8);
        let before_cold = service.cache_stats().unwrap();
        let _ = service.annotate_batch(&tables);
        let after_cold = service.cache_stats().unwrap();
        let cold = after_cold.since(&before_cold);
        assert_eq!(cold.hits, 0, "cold batch cannot hit");
        assert!(cold.misses > 0);
        assert_eq!(cold.inserts, cold.misses, "every cold miss inserts");
        assert!(after_cold.entries > 0);

        let _ = service.annotate_batch(&tables);
        let warm = service.cache_stats().unwrap().since(&after_cold);
        assert_eq!(warm.misses, 0, "warm batch must be all hits");
        assert_eq!(warm.inserts, 0);
        assert_eq!(warm.hits, cold.inserts, "one hit per memoized column");
        // The cumulative snapshot keeps the running totals.
        let total = service.cache_stats().unwrap();
        assert_eq!(total.hits, warm.hits);
        assert_eq!(total.misses, cold.misses);
        assert!(total.hit_rate() > 0.0);
    }

    #[test]
    fn sizer_capacity_rules_use_delta_counters_and_absolute_entries() {
        let sizer = AdaptiveSizer::new(AdaptiveSizingConfig::default(), 1024, 4);
        // Too little traffic: hold.
        let tiny = CacheStats {
            hits: 1,
            misses: 1,
            ..CacheStats::default()
        };
        assert_eq!(sizer.plan_capacity(&tiny), None);
        // Thrash (low hit rate + evictions): double.
        let thrash = CacheStats {
            hits: 10,
            misses: 90,
            inserts: 90,
            evictions: 50,
            entries: 1024,
        };
        assert_eq!(sizer.plan_capacity(&thrash), Some(2048));
        assert_eq!(sizer.capacity_target(), 2048);
        // Low hit rate but no evictions = cold keys, not churn: hold.
        let cold = CacheStats {
            hits: 0,
            misses: 100,
            inserts: 100,
            evictions: 0,
            entries: 100,
        };
        assert_eq!(sizer.plan_capacity(&cold), None);
        // Comfortably oversized (high hit rate, no evictions, small
        // *absolute* occupancy — `entries` is not a delta): halve.
        let cozy = CacheStats {
            hits: 95,
            misses: 5,
            inserts: 0,
            evictions: 0,
            entries: 100,
        };
        assert_eq!(sizer.plan_capacity(&cozy), Some(1024));
        // Same traffic at high occupancy must NOT shrink — this is
        // exactly where misreading `entries` as a per-batch delta
        // (usually 0 or small) would shrink a full cache.
        let full = CacheStats {
            entries: 1000,
            ..cozy
        };
        assert_eq!(sizer.plan_capacity(&full), None);
        // Bounds: growth is capped, shrink is floored.
        let bounded = AdaptiveSizer::new(
            AdaptiveSizingConfig {
                min_capacity: 512,
                max_capacity: 1500,
                ..AdaptiveSizingConfig::default()
            },
            1024,
            4,
        );
        assert_eq!(bounded.plan_capacity(&thrash), Some(1500));
        let empty_cozy = CacheStats { entries: 0, ..cozy };
        assert_eq!(bounded.plan_capacity(&empty_cozy), Some(750));
        assert_eq!(bounded.plan_capacity(&empty_cozy), Some(512));
        assert_eq!(bounded.plan_capacity(&empty_cozy), None, "at the floor");
    }

    #[test]
    fn sizer_thread_rules_halve_on_shed_and_regrow_to_ceiling() {
        let sizer = AdaptiveSizer::new(AdaptiveSizingConfig::default(), 1024, 8);
        assert_eq!(sizer.thread_target(), 8);
        assert_eq!(sizer.plan_threads(0.5), 4);
        assert_eq!(sizer.plan_threads(0.5), 2);
        assert_eq!(sizer.plan_threads(1.0), 1);
        assert_eq!(sizer.plan_threads(1.0), 1, "floor of one worker");
        // Mild shedding (at/below threshold but nonzero): hold.
        assert_eq!(sizer.plan_threads(0.05), 1);
        // Clean batches double back, capped at the attach-time count.
        assert_eq!(sizer.plan_threads(0.0), 2);
        assert_eq!(sizer.plan_threads(0.0), 4);
        assert_eq!(sizer.plan_threads(0.0), 8);
        assert_eq!(sizer.plan_threads(0.0), 8, "ceiling");
    }

    #[test]
    fn adaptive_sizing_grows_a_thrashing_live_cache() {
        // One two-slot shard: a cold batch's distinct column keys are
        // guaranteed to churn it, whatever the hash spread.
        let lru = Arc::new(ShardedLruCache::with_shards(2, 1));
        let service = AnnotationService::new(global(), SigmaTyperConfig::default())
            .with_threads(4)
            .with_cache(lru.clone() as Arc<dyn StepCache>)
            .with_adaptive_sizing(
                AdaptiveSizingConfig {
                    min_capacity: 1,
                    min_lookups: 1,
                    ..AdaptiveSizingConfig::default()
                },
                2,
            );
        let tables = batch(0xADA7, 10);
        assert_eq!(lru.capacity(), 2);
        let _ = service.annotate_batch(&tables);
        // The cold batch churned the tiny LRU (all misses, evictions),
        // so the loop doubles and applies it via resize.
        let sizer = service.adaptive_sizer().expect("sizing configured");
        assert_eq!(sizer.capacity_target(), 4);
        assert_eq!(lru.capacity(), 4, "resize reached the live cache");
        // Plain batches never shed, so the thread target stays put.
        assert_eq!(sizer.thread_target(), 4);
    }

    #[test]
    fn adaptive_sizing_sheds_threads_on_degraded_batches_and_recovers() {
        use crate::request::{DegradationPolicy, RequestOptions};
        let service = AnnotationService::new(global(), SigmaTyperConfig::default())
            .with_threads(4)
            .cached(1 << 14)
            .with_adaptive_sizing(AdaptiveSizingConfig::default(), 1 << 14);
        let tables = batch(0x5ED, 6);
        let strangled = RequestOptions::default()
            .with_budget_nanos(0)
            .with_policy(DegradationPolicy::DropTailSteps);
        let outcomes = service.annotate_batch_request(&tables, &strangled);
        assert!(outcomes.iter().all(AnnotationOutcome::degraded));
        let sizer = service.adaptive_sizer().unwrap();
        assert_eq!(sizer.thread_target(), 2, "full shed halves the target");
        let _ = service.annotate_batch_request(&tables, &strangled);
        assert_eq!(sizer.thread_target(), 1);
        // The next batch really runs narrower…
        assert_eq!(service.effective_threads(), 1);
        // …and clean batches regrow toward the configured count.
        let clean = service.annotate_batch_request(&tables, &RequestOptions::default());
        assert!(clean.iter().all(|o| !o.degraded()));
        assert_eq!(sizer.thread_target(), 2);
        let _ = service.annotate_batch(&tables);
        assert_eq!(sizer.thread_target(), 4);
        assert_eq!(service.effective_threads(), 4);
    }

    #[test]
    fn traffic_lane_labels_round_trip() {
        for lane in TrafficLane::ALL {
            assert_eq!(TrafficLane::from_label(lane.label()), Some(lane));
        }
        assert_eq!(
            TrafficLane::from_label("INTERACTIVE"),
            Some(TrafficLane::Interactive)
        );
        assert_eq!(TrafficLane::from_label("Crawl"), Some(TrafficLane::Crawl));
        assert_eq!(TrafficLane::from_label("bulk"), None);
        assert_eq!(TrafficLane::from_label(""), None);
    }

    #[test]
    fn lane_ledger_shares_one_window_and_rolls() {
        let lane = LaneLedger::new(TrafficLane::Crawl, Some(1_000), Duration::from_millis(10));
        assert_eq!(lane.lane(), TrafficLane::Crawl);
        assert_eq!(lane.window_budget(), Some(1_000));
        // Two callers inside one window charge the same ledger.
        let a = lane.ledger();
        let b = lane.ledger();
        a.charge(600);
        b.charge(600);
        assert!(a.exhausted() && b.exhausted());
        assert_eq!(lane.total_spent_nanos(), 1_200);
        assert_eq!(lane.remaining_nanos(), Some(0));
        // After the window elapses the budget refills but cumulative
        // spend is monotone.
        std::thread::sleep(Duration::from_millis(15));
        let fresh = lane.ledger();
        assert!(!fresh.exhausted());
        assert_eq!(fresh.remaining(), Some(1_000));
        assert_eq!(lane.total_spent_nanos(), 1_200);
        fresh.charge(5);
        assert_eq!(lane.total_spent_nanos(), 1_205);
    }

    #[test]
    fn unbudgeted_lane_never_rolls_or_degrades() {
        let lane = LaneLedger::new(TrafficLane::Interactive, None, Duration::from_millis(1));
        let ledger = lane.ledger();
        ledger.charge(u64::MAX / 2);
        assert!(!ledger.exhausted());
        assert_eq!(lane.remaining_nanos(), None);
        std::thread::sleep(Duration::from_millis(3));
        // Same live ledger after the "window": unbudgeted lanes keep
        // one cumulative ledger forever.
        assert_eq!(lane.total_spent_nanos(), u64::MAX / 2);
    }

    #[test]
    fn bounded_queue_backpressure_and_drain() {
        let queue = BoundedQueue::new(2);
        assert_eq!(queue.capacity(), 2);
        assert!(queue.is_empty());
        queue.push(1).unwrap();
        queue.push(2).unwrap();
        assert_eq!(queue.len(), 2);
        // Full: the item comes back with the rejection.
        let (item, why) = queue.push(3).unwrap_err();
        assert_eq!((item, why), (3, QueueRejection::Full));
        // Close: pending items still drain, then poppers see None and
        // new pushes are refused.
        queue.close();
        assert_eq!(queue.push(4).unwrap_err().1, QueueRejection::Closed);
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), Some(2));
        assert_eq!(queue.pop(), None);
        // Zero capacity refuses everything — the forced-shed path.
        let zero: BoundedQueue<u8> = BoundedQueue::new(0);
        assert_eq!(zero.push(9).unwrap_err().1, QueueRejection::Full);
    }

    #[test]
    fn bounded_queue_close_wakes_blocked_poppers() {
        let queue = Arc::new(BoundedQueue::<u32>::new(4));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&queue);
                std::thread::spawn(move || {
                    let mut got = 0u32;
                    while let Some(item) = q.pop() {
                        got += item;
                    }
                    got
                })
            })
            .collect();
        for i in 1..=4 {
            // Blocked consumers may outpace the producer; retry fulls.
            loop {
                match queue.push(i) {
                    Ok(()) => break,
                    Err((_, QueueRejection::Full)) => std::thread::yield_now(),
                    Err((_, QueueRejection::Closed)) => unreachable!(),
                }
            }
        }
        queue.close();
        let total: u32 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 1 + 2 + 3 + 4, "every admitted item is served");
    }

    /// Satellite regression: inverted bounds must normalize instead of
    /// panicking, and a pathological shed/thrash oscillation must stay
    /// inside `[min_capacity, max_capacity]` and at most the attach-time
    /// thread count — forever, not just for one step.
    #[test]
    fn sizer_bounds_survive_inversion_and_oscillation() {
        // min > max: normalized (max wins), no panic.
        let inverted = AdaptiveSizer::new(
            AdaptiveSizingConfig {
                min_capacity: 4096,
                max_capacity: 512,
                ..AdaptiveSizingConfig::default()
            },
            1024,
            4,
        );
        assert_eq!(inverted.capacity_target(), 512);
        // max 0: degrades to 1.
        let zeroed = AdaptiveSizer::new(
            AdaptiveSizingConfig {
                min_capacity: 0,
                max_capacity: 0,
                ..AdaptiveSizingConfig::default()
            },
            1024,
            4,
        );
        assert_eq!(zeroed.capacity_target(), 1);

        let config = AdaptiveSizingConfig {
            min_capacity: 256,
            max_capacity: 2048,
            min_lookups: 1,
            ..AdaptiveSizingConfig::default()
        };
        let sizer = AdaptiveSizer::new(config, 1024, 6);
        let thrash = CacheStats {
            hits: 0,
            misses: 100,
            inserts: 100,
            evictions: 80,
            entries: 2048,
        };
        let cozy = CacheStats {
            hits: 99,
            misses: 1,
            inserts: 0,
            evictions: 0,
            entries: 1,
        };
        for round in 0..50 {
            let _ = sizer.plan_capacity(if round % 2 == 0 { &thrash } else { &cozy });
            let _ = sizer.plan_threads(if round % 2 == 0 { 1.0 } else { 0.0 });
            let cap = sizer.capacity_target();
            assert!(
                (config.min_capacity..=config.max_capacity).contains(&cap),
                "round {round}: capacity {cap} escaped the bounds"
            );
            let threads = sizer.thread_target();
            assert!(
                (1..=6).contains(&threads),
                "round {round}: thread target {threads} escaped [1, attach-time 6]"
            );
        }
        // Sustained thrash + clean batches pin to the configured caps,
        // never beyond.
        for _ in 0..20 {
            let _ = sizer.plan_capacity(&thrash);
            let _ = sizer.plan_threads(0.0);
        }
        assert_eq!(sizer.capacity_target(), 2048);
        assert_eq!(sizer.thread_target(), 6);
    }

    #[test]
    fn flush_is_safe_for_uncached_and_cached_services() {
        let uncached = AnnotationService::new(global(), SigmaTyperConfig::default());
        uncached.flush().expect("uncached flush is a no-op");
        let cached = AnnotationService::new(global(), SigmaTyperConfig::default()).cached(64);
        let _ = cached.annotate_batch(&batch(0xF1, 2));
        cached.flush().expect("in-memory flush succeeds");
    }

    #[test]
    fn adapted_customer_serves_its_adaptation() {
        let mut service =
            AnnotationService::new(global(), SigmaTyperConfig::default()).with_threads(4);
        let o = service.typer().ontology().clone();
        let phone = tu_ontology::builtin_id(&o, "phone number");
        let mk = |seed: u64| {
            let vals: Vec<String> = (0..30)
                .map(|i| format!("{}", 30_000_000 + seed * 1000 + i * 97))
                .collect();
            Table::new(
                format!("contacts_{seed}"),
                vec![tu_table::Column::from_raw("contact", &vals)],
            )
            .unwrap()
        };
        for s in 1..=3 {
            service.typer_mut().feedback(&mk(s), 0, phone, None);
        }
        let anns = service.annotate_batch(&[mk(7), mk(8), mk(9)]);
        for ann in &anns {
            assert_eq!(ann.columns[0].predicted, phone);
        }
    }
}
