//! The per-customer local model (paper §4.2, Figure 2).
//!
//! Holds the customer's inferred labeling functions, a lazily finetuned
//! copy of the global embedding model, and the per-type feedback counts
//! that drive the `Wl` weight vector: "the influence of the local model
//! on the final prediction increases over time".

use crate::embedstep::TableEmbeddingModel;
use std::collections::HashMap;
use tu_dp::LabelingFunction;
use tu_ontology::TypeId;
use tu_table::Column;

/// Shrinkage constant: `wl = n / (n + K)` after `n` feedback events.
pub const WL_SHRINKAGE: f64 = 2.0;

/// Shrinkage constant for the global weight: `wg = K / (K + n)` after
/// the customer overrode `n` global predictions of a type.
pub const WG_SHRINKAGE: f64 = 2.0;

/// One customer's local model.
#[derive(Debug, Clone, Default)]
pub struct LocalModel {
    /// DPBD-inferred labeling functions.
    pub lfs: Vec<LabelingFunction>,
    /// Finetuned copy of the global embedding model (lazy).
    pub finetuned: Option<TableEmbeddingModel>,
    feedback_counts: HashMap<TypeId, u32>,
    overridden_counts: HashMap<(TypeId, String), u32>,
    /// Accumulated local training examples `(column, neighbor headers,
    /// label)` — "the entire table with its labels is then added to the
    /// training data".
    pub training: Vec<(Column, Vec<String>, TypeId)>,
}

impl LocalModel {
    /// A fresh, empty local model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Local weight for a type: 0 before any feedback, approaching 1.
    #[must_use]
    pub fn wl(&self, ty: TypeId) -> f64 {
        let n = f64::from(self.feedback_counts.get(&ty).copied().unwrap_or(0));
        n / (n + WL_SHRINKAGE)
    }

    /// Record one feedback event for a type.
    pub fn record_feedback(&mut self, ty: TypeId) {
        *self.feedback_counts.entry(ty).or_insert(0) += 1;
    }

    /// Global weight for a type *in the context of a normalized header*:
    /// 1 before any contradiction, shrinking as the customer keeps
    /// overriding global predictions of that type on such columns — the
    /// `Wg` side of Figure 2. Keying on the header keeps the discount
    /// contextual: correcting one mislabeled `id` column must not damage
    /// correct predictions of `identifier` elsewhere.
    #[must_use]
    pub fn wg(&self, ty: TypeId, normalized_header: &str) -> f64 {
        let n = f64::from(
            self.overridden_counts
                .get(&(ty, normalized_header.to_owned()))
                .copied()
                .unwrap_or(0),
        );
        WG_SHRINKAGE / (WG_SHRINKAGE + n)
    }

    /// Record that the customer corrected a global prediction of `ty` on
    /// a column with this normalized header.
    pub fn record_override(&mut self, ty: TypeId, normalized_header: &str) {
        *self
            .overridden_counts
            .entry((ty, normalized_header.to_owned()))
            .or_insert(0) += 1;
    }

    /// Total number of feedback events.
    #[must_use]
    pub fn total_feedback(&self) -> u32 {
        self.feedback_counts.values().sum()
    }

    /// Overall local-model influence: `n/(n+K)` over total feedback.
    /// Monotone in feedback, 0 for a fresh model — the scalar the
    /// adaptation curve (Fig. 2) reports.
    #[must_use]
    pub fn influence(&self) -> f64 {
        let n = f64::from(self.total_feedback());
        n / (n + WL_SHRINKAGE)
    }

    /// Number of distinct types that received feedback.
    #[must_use]
    pub fn types_with_feedback(&self) -> usize {
        self.feedback_counts.len()
    }

    /// Add local labeling functions (deduplicated by name).
    pub fn add_lfs(&mut self, lfs: Vec<LabelingFunction>) {
        for lf in lfs {
            if !self.lfs.iter().any(|l| l.name == lf.name) {
                self.lfs.push(lf);
            }
        }
    }

    /// Append local training examples.
    pub fn add_training(&mut self, examples: Vec<(Column, Vec<String>, TypeId)>) {
        self.training.extend(examples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wl_grows_with_feedback() {
        let mut m = LocalModel::new();
        let t = TypeId(3);
        assert_eq!(m.wl(t), 0.0);
        m.record_feedback(t);
        assert!((m.wl(t) - 1.0 / 3.0).abs() < 1e-12);
        m.record_feedback(t);
        assert!((m.wl(t) - 0.5).abs() < 1e-12);
        for _ in 0..20 {
            m.record_feedback(t);
        }
        assert!(m.wl(t) > 0.9);
        // Other types unaffected.
        assert_eq!(m.wl(TypeId(4)), 0.0);
        assert_eq!(m.total_feedback(), 22);
        assert_eq!(m.types_with_feedback(), 1);
    }

    #[test]
    fn wg_shrinks_per_type_and_header() {
        let mut m = LocalModel::new();
        let t = TypeId(5);
        assert_eq!(m.wg(t, "id"), 1.0);
        m.record_override(t, "id");
        assert!((m.wg(t, "id") - 2.0 / 3.0).abs() < 1e-12);
        m.record_override(t, "id");
        assert!((m.wg(t, "id") - 0.5).abs() < 1e-12);
        // Contextual: same type under a different header is untouched.
        assert_eq!(m.wg(t, "key"), 1.0);
        assert_eq!(m.wg(TypeId(6), "id"), 1.0);
    }

    #[test]
    fn lf_deduplication_by_name() {
        let mut m = LocalModel::new();
        let mk = |name: &str| LabelingFunction {
            name: name.into(),
            ty: TypeId(1),
            source: tu_dp::LfSource::Local,
            kind: tu_dp::LfKind::HeaderEquals("x".into()),
        };
        m.add_lfs(vec![mk("a"), mk("b")]);
        m.add_lfs(vec![mk("a"), mk("c")]);
        assert_eq!(m.lfs.len(), 3);
    }

    #[test]
    fn training_accumulates() {
        let mut m = LocalModel::new();
        m.add_training(vec![(Column::from_raw("c", &["1"]), vec![], TypeId(1))]);
        m.add_training(vec![(Column::from_raw("d", &["2"]), vec![], TypeId(2))]);
        assert_eq!(m.training.len(), 2);
    }
}
