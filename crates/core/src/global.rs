//! The global model: pretrained once, "identically deployed across all
//! customers" (paper §1, Figure 2).

use crate::config::TrainingConfig;
use crate::embedstep::{train_embedding_model, TableEmbeddingModel};
use crate::headerstep::HeaderMatcher;
use crate::lookupstep::ValueLookup;
use crate::regexbank::RegexBank;
use tu_corpus::Corpus;
use tu_dp::{LabelingFunction, LfKind, LfSource};
use tu_embed::{Embedder, SkipGramConfig};
use tu_kb::KnowledgeBase;
use tu_ontology::Ontology;

/// The pretrained global model shared by all customers.
#[derive(Debug, Clone)]
pub struct GlobalModel {
    /// The semantic type ontology (DBpedia role, §4.1).
    pub ontology: Ontology,
    /// Trained word embedder (FastText role).
    pub embedder: Embedder,
    /// Step 1 matcher.
    pub header: HeaderMatcher,
    /// Step 2 lookup (KB + regex bank).
    pub lookup: ValueLookup,
    /// Global labeling functions (header-alias LFs, §4.3 source 1).
    pub global_lfs: Vec<LabelingFunction>,
    /// Step 3 model (TaBERT role) with background `unknown` class.
    pub embedding: TableEmbeddingModel,
}

/// Build the token sequences the embedder trains on: for every corpus
/// column, its type's surface forms and the (tokenized) header co-occur;
/// additionally each type's alias set forms its own sequence. This is
/// what makes "income" land near "salary".
#[must_use]
pub fn embedding_sequences(ontology: &Ontology, corpus: &Corpus) -> Vec<Vec<String>> {
    let mut seqs: Vec<Vec<String>> = Vec::new();
    // One sequence per type holding the canonical name and every alias
    // together, repeated for weight. Skip-gram input vectors align only
    // through *shared contexts*, so synonyms must co-occur inside one
    // window rather than in isolated pairs.
    for def in ontology.defs() {
        if def.id.is_unknown() || def.aliases.is_empty() {
            continue;
        }
        let mut seq: Vec<String> = def.name.split(' ').map(str::to_owned).collect();
        for alias in &def.aliases {
            seq.extend(alias.split(' ').map(str::to_owned));
        }
        for _ in 0..6 {
            seqs.push(seq.clone());
        }
    }
    // Corpus sequences: header tokens + type tokens per column, plus one
    // table-level sequence of all type names (co-occurrence context).
    for at in &corpus.tables {
        let mut table_seq: Vec<String> = Vec::new();
        for (ci, col) in at.table.columns().iter().enumerate() {
            let label = at.labels[ci];
            if label.is_unknown() {
                continue;
            }
            let type_tokens: Vec<String> =
                ontology.name(label).split(' ').map(str::to_owned).collect();
            let mut seq = tu_text::header_tokens(&col.name);
            seq.extend(type_tokens.iter().cloned());
            seqs.push(seq);
            table_seq.extend(type_tokens);
        }
        if table_seq.len() >= 2 {
            seqs.push(table_seq);
        }
    }
    seqs
}

/// Build the global LF bank: one header-equality LF per ontology surface
/// form. These make alias knowledge available to the lookup step even
/// when the header matcher is bypassed.
#[must_use]
pub fn global_lf_bank(ontology: &Ontology) -> Vec<LabelingFunction> {
    ontology
        .all_surfaces()
        .into_iter()
        .map(|(surface, ty)| LabelingFunction {
            name: format!("global:header[{surface}]"),
            ty,
            source: LfSource::Global,
            kind: LfKind::HeaderEquals(surface.to_owned()),
        })
        .collect()
}

/// Train the full global model on a pretraining corpus (GitTables role).
#[must_use]
pub fn train_global(ontology: Ontology, corpus: &Corpus, config: &TrainingConfig) -> GlobalModel {
    let seqs = embedding_sequences(&ontology, corpus);
    let embedder = Embedder::train(
        &seqs,
        &SkipGramConfig {
            dim: config.embed_dim,
            epochs: config.embed_epochs,
            seed: config.seed,
            ..SkipGramConfig::default()
        },
    );
    let header = HeaderMatcher::new(&ontology, &embedder);
    let kb = KnowledgeBase::builtin(&ontology);
    let bank = RegexBank::builtin(&ontology);
    let lookup = ValueLookup::new(kb, bank);
    let global_lfs = global_lf_bank(&ontology);
    let embedding = train_embedding_model(&ontology, corpus, &embedder, config);
    GlobalModel {
        ontology,
        embedder,
        header,
        lookup,
        global_lfs,
        embedding,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tu_corpus::{generate_corpus, CorpusConfig};
    use tu_ontology::{builtin_id, builtin_ontology};

    #[test]
    fn sequences_tie_aliases_to_types() {
        let o = builtin_ontology();
        let corpus = generate_corpus(&o, &CorpusConfig::database_like(41, 10));
        let seqs = embedding_sequences(&o, &corpus);
        assert!(seqs.len() > 100);
        // Somewhere, "income" and "salary" co-occur.
        assert!(seqs
            .iter()
            .any(|s| s.contains(&"income".to_string()) && s.contains(&"salary".to_string())));
    }

    #[test]
    fn global_lf_bank_covers_all_surfaces() {
        let o = builtin_ontology();
        let bank = global_lf_bank(&o);
        assert_eq!(bank.len(), o.all_surfaces().len());
        assert!(bank.iter().all(|l| l.source == LfSource::Global));
    }

    #[test]
    fn trained_global_model_components_work_together() {
        let o = builtin_ontology();
        let mut cfg = CorpusConfig::database_like(42, 50);
        cfg.ood_column_rate = 0.2;
        let corpus = generate_corpus(&o, &cfg);
        let gm = train_global(builtin_ontology(), &corpus, &TrainingConfig::fast());
        // Embedder learned synonym geometry.
        let sim_syn = gm.embedder.similarity("income", "salary");
        let sim_far = gm.embedder.similarity("income", "city");
        assert!(
            sim_syn > sim_far,
            "income~salary {sim_syn} should beat income~city {sim_far}"
        );
        // Header matcher resolves an alias.
        let s = gm.header.match_header(
            "wage",
            &gm.embedder,
            &crate::config::SigmaTyperConfig::default(),
        );
        assert_eq!(s.best().unwrap().ty, builtin_id(&gm.ontology, "salary"));
    }
}
