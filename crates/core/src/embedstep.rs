//! Pipeline step 3: the table-embedding model (paper §4.3).
//!
//! The TaBERT substitute (see DESIGN.md): a column is encoded from its
//! own content (Sherlock-style features + value/header embeddings) plus
//! *table context* (the mean embedding of the neighboring headers), and
//! classified by an MLP head whose class 0 is the background `unknown`
//! type — the out-of-distribution mechanism the paper adopts from
//! Dhamija et al. \[30\]. Supports incremental finetuning for local models.

use crate::config::TrainingConfig;
use crate::prediction::{Candidate, StepScores};
use tu_corpus::Corpus;
use tu_embed::Embedder;
use tu_features::{FeatureConfig, FeatureExtractor};
use tu_ml::{fit_temperature, Dataset, Mlp, MlpConfig, StandardScaler, Temperature};
use tu_ontology::{Ontology, TypeId};
use tu_table::Column;

/// The trained table-embedding classifier.
#[derive(Debug, Clone)]
pub struct TableEmbeddingModel {
    extractor: FeatureExtractor,
    scaler: StandardScaler,
    mlp: Mlp,
    temperature: Temperature,
    embed_dim: usize,
    n_classes: usize,
}

impl TableEmbeddingModel {
    /// Feature dimensionality: column features + neighbor-header context.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.extractor.dim() + self.embed_dim
    }

    /// Number of classes (ontology size, class 0 = `unknown`).
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Encode one column with its neighbor headers.
    #[must_use]
    pub fn featurize(&self, column: &Column, neighbor_headers: &[&str]) -> Vec<f32> {
        let mut f = self.extractor.extract(column);
        f.extend(context_vector(
            self.extractor.embedder(),
            self.embed_dim,
            neighbor_headers,
        ));
        self.scaler.transform_inplace(&mut f);
        f
    }

    /// Predict calibrated class probabilities.
    #[must_use]
    pub fn predict(&self, column: &Column, neighbor_headers: &[&str]) -> StepScores {
        let f = self.featurize(column, neighbor_headers);
        self.scores_from_features(&f)
    }

    /// Phrase vector of one raw header under this model's embedder —
    /// the reusable unit of the neighbor-context encoding. Batch
    /// callers ([`EmbeddingStep::run_batch`]) encode each header of a
    /// table once and share the vectors across columns instead of
    /// re-encoding every neighbor per column.
    ///
    /// [`EmbeddingStep::run_batch`]: crate::step::EmbeddingStep
    #[must_use]
    pub fn header_vector(&self, header: &str) -> Vec<f32> {
        self.extractor
            .embedder()
            .phrase_vector(&tu_text::normalize_header(header))
    }

    /// Mean context vector over precomputed neighbor vectors (zero
    /// vector when there are none). The accumulation order matches the
    /// internal path of [`TableEmbeddingModel::predict`] exactly, so a
    /// context assembled from [`TableEmbeddingModel::header_vector`]
    /// results is bit-identical to the one `predict` would compute
    /// from the raw headers.
    #[must_use]
    pub fn context_of(&self, neighbor_vectors: &[&[f32]]) -> Vec<f32> {
        mean_vectors(self.embed_dim, neighbor_vectors)
    }

    /// [`TableEmbeddingModel::predict`] with a precomputed neighbor
    /// context (see [`TableEmbeddingModel::context_of`]).
    #[must_use]
    pub fn predict_with_context(&self, column: &Column, context: &[f32]) -> StepScores {
        let f = self.features_with_context(column, context);
        self.scores_from_features(&f)
    }

    /// The exact feature vector the predict paths score: column
    /// features, the precomputed neighbor context appended, scaled
    /// in place. Public so [`EmbeddingBackend`] implementations share
    /// the reference featurization bit for bit and differ only in how
    /// they run the MLP head.
    ///
    /// [`EmbeddingBackend`]: crate::backend::EmbeddingBackend
    #[must_use]
    pub fn features_with_context(&self, column: &Column, context: &[f32]) -> Vec<f32> {
        let mut f = self.extractor.extract(column);
        f.extend_from_slice(context);
        self.scaler.transform_inplace(&mut f);
        f
    }

    /// The MLP head. Read access for alternative inference backends
    /// (see [`crate::backend`]): they quantize, block, or batch these
    /// weights but never mutate them.
    #[must_use]
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// Shared tail of the predict paths: calibrated probabilities →
    /// thresholded, truncated candidate list.
    fn scores_from_features(&self, f: &[f32]) -> StepScores {
        self.scores_from_logits(&self.mlp.logits(f))
    }

    /// Calibrated candidate scores from raw logits: temperature
    /// scaling, the 0.01 probability floor, and top-8 truncation —
    /// every backend funnels its logits through this one tail so the
    /// calibration and thresholding rules cannot drift per backend.
    #[must_use]
    pub fn scores_from_logits(&self, logits: &[f32]) -> StepScores {
        let probs = self.temperature.apply(logits);
        let cands: Vec<Candidate> = probs
            .iter()
            .enumerate()
            .filter(|(_, p)| **p > 0.01)
            .map(|(i, p)| Candidate {
                ty: TypeId(i as u16),
                confidence: f64::from(*p),
            })
            .collect();
        let mut scores = StepScores::from_candidates(cands);
        scores.candidates.truncate(8);
        scores
    }

    /// Probability mass the model assigns to the background `unknown`
    /// class — the direct OOD score.
    #[must_use]
    pub fn unknown_probability(&self, column: &Column, neighbor_headers: &[&str]) -> f64 {
        let f = self.featurize(column, neighbor_headers);
        let probs = self.temperature.apply(&self.mlp.logits(&f));
        f64::from(probs[0])
    }

    /// Finetune on additional labeled columns (weak labels from DPBD).
    /// `examples` pairs `(column, neighbor headers, label)`.
    pub fn partial_fit(&mut self, examples: &[(&Column, Vec<&str>, TypeId)], epochs: usize) {
        if examples.is_empty() {
            return;
        }
        let x: Vec<Vec<f32>> = examples
            .iter()
            .map(|(c, n, _)| self.featurize(c, &n.iter().map(|s| &**s).collect::<Vec<_>>()))
            .collect();
        let y: Vec<usize> = examples.iter().map(|(_, _, t)| t.index()).collect();
        let ds = Dataset::new(x, y, self.n_classes);
        self.mlp.partial_fit(&ds, epochs);
    }
}

/// Mean embedding of neighbor headers (zero vector when none).
fn context_vector(embedder: &Embedder, dim: usize, neighbor_headers: &[&str]) -> Vec<f32> {
    let vecs: Vec<Vec<f32>> = neighbor_headers
        .iter()
        .map(|h| embedder.phrase_vector(&tu_text::normalize_header(h)))
        .collect();
    let refs: Vec<&[f32]> = vecs.iter().map(Vec::as_slice).collect();
    mean_vectors(dim, &refs)
}

/// Element-wise mean of vectors (zero vector when none). One shared
/// accumulation loop for the per-column and batch paths — identical
/// operations in identical order is what makes the batch amortization
/// bit-identical.
fn mean_vectors(dim: usize, vecs: &[&[f32]]) -> Vec<f32> {
    let mut acc = vec![0.0f32; dim];
    if vecs.is_empty() {
        return acc;
    }
    for v in vecs {
        for (a, x) in acc.iter_mut().zip(*v) {
            *a += x;
        }
    }
    for a in &mut acc {
        *a /= vecs.len() as f32;
    }
    acc
}

/// Train the table-embedding model on an annotated corpus.
///
/// Columns labeled `unknown` (injected OOD columns) become background
/// training data. A calibration split fits the temperature.
#[must_use]
pub fn train_embedding_model(
    ontology: &Ontology,
    corpus: &Corpus,
    embedder: &Embedder,
    config: &TrainingConfig,
) -> TableEmbeddingModel {
    let extractor = FeatureExtractor::new(embedder.clone(), FeatureConfig::default());
    let embed_dim = embedder.dim();
    // Reserved spare classes let customers register new types later and
    // teach them purely through local finetuning.
    let n_classes = ontology.len() + config.reserve_classes;

    // Featurize every column with its neighbor-header context.
    let mut x: Vec<Vec<f32>> = Vec::with_capacity(corpus.n_columns());
    let mut y: Vec<usize> = Vec::with_capacity(corpus.n_columns());
    for at in &corpus.tables {
        let headers = at.table.headers();
        for (ci, col) in at.table.columns().iter().enumerate() {
            let neighbors: Vec<&str> = headers
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != ci)
                .map(|(_, h)| *h)
                .collect();
            let mut f = extractor.extract(col);
            f.extend(context_vector(embedder, embed_dim, &neighbors));
            x.push(f);
            y.push(at.labels[ci].index());
        }
    }
    let scaler = StandardScaler::fit(&x);
    for v in &mut x {
        scaler.transform_inplace(v);
    }
    let ds = Dataset::new(x, y, n_classes);
    let (train, cal) = ds.split(1.0 - config.calibration_fraction, config.seed);

    let mut mlp = Mlp::new(
        train.dim(),
        n_classes,
        MlpConfig {
            hidden: config.hidden,
            epochs: config.epochs,
            seed: config.seed,
            ..MlpConfig::default()
        },
    );
    mlp.fit(&train);

    let logits: Vec<Vec<f32>> = cal.x.iter().map(|v| mlp.logits(v)).collect();
    let temperature = fit_temperature(&logits, &cal.y);

    TableEmbeddingModel {
        extractor,
        scaler,
        mlp,
        temperature,
        embed_dim,
        n_classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tu_corpus::{generate_corpus, CorpusConfig};
    use tu_ontology::{builtin_id, builtin_ontology};

    fn trained() -> (Ontology, Corpus, TableEmbeddingModel) {
        let o = builtin_ontology();
        let mut cfg = CorpusConfig::database_like(31, 60);
        cfg.ood_column_rate = 0.3;
        let corpus = generate_corpus(&o, &cfg);
        let embedder = Embedder::untrained(16);
        let model = train_embedding_model(&o, &corpus, &embedder, &TrainingConfig::fast());
        (o, corpus, model)
    }

    #[test]
    fn learns_to_classify_held_out_columns() {
        let (o, _, model) = trained();
        let mut test_cfg = CorpusConfig::database_like(99, 15);
        test_cfg.ood_column_rate = 0.0;
        let test = generate_corpus(&o, &test_cfg);
        let mut correct = 0usize;
        let mut total = 0usize;
        for at in &test.tables {
            let headers = at.table.headers();
            for (ci, col) in at.table.columns().iter().enumerate() {
                let neighbors: Vec<&str> = headers
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != ci)
                    .map(|(_, h)| *h)
                    .collect();
                let s = model.predict(col, &neighbors);
                if let Some(best) = s.best() {
                    total += 1;
                    if best.ty == at.labels[ci] {
                        correct += 1;
                    }
                }
            }
        }
        let acc = correct as f64 / total.max(1) as f64;
        assert!(
            acc > 0.5,
            "held-out accuracy too low: {acc} ({correct}/{total})"
        );
    }

    #[test]
    fn ood_columns_get_unknown_mass() {
        let (_, _, model) = trained();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        // Average unknown mass over several OOD kinds vs in-distribution.
        let mut ood_mass = 0.0;
        let mut n = 0;
        for &kind in tu_corpus::ood::ALL_OOD_KINDS {
            let vals = tu_corpus::ood::generate_ood_column(&mut rng, kind, 40);
            let col = Column::new(kind.header(), vals);
            ood_mass += model.unknown_probability(&col, &[]);
            n += 1;
        }
        ood_mass /= f64::from(n);
        let id_col = Column::from_raw(
            "city",
            &["Amsterdam", "Paris", "Tokyo", "Berlin", "Madrid", "Oslo"],
        );
        let id_mass = model.unknown_probability(&id_col, &[]);
        assert!(
            ood_mass > id_mass,
            "OOD columns should carry more unknown mass: ood {ood_mass} vs id {id_mass}"
        );
    }

    #[test]
    fn probabilities_are_valid() {
        let (_, corpus, model) = trained();
        let at = &corpus.tables[0];
        let col = at.table.column(0).unwrap();
        let s = model.predict(col, &[]);
        assert!(!s.candidates.is_empty());
        for c in &s.candidates {
            assert!((0.0..=1.0).contains(&c.confidence));
            assert!((c.ty.index()) < model.n_classes());
        }
    }

    #[test]
    fn partial_fit_shifts_predictions() {
        let (o, _, mut model) = trained();
        let phone = builtin_id(&o, "phone number");
        // Teach the model that 8-digit integers are phone numbers.
        let vals: Vec<String> = (0..40)
            .map(|i| format!("{}", 20_000_000 + i * 137))
            .collect();
        let col = Column::from_raw("contact", &vals);
        let before = model.predict(&col, &[]).confidence_for(phone);
        let examples: Vec<(&Column, Vec<&str>, TypeId)> = vec![(&col, vec![], phone); 8];
        model.partial_fit(&examples, 25);
        let after = model.predict(&col, &[]).confidence_for(phone);
        assert!(
            after > before,
            "finetuning must raise target confidence: {before} → {after}"
        );
        assert!(after > 0.3, "after {after}");
    }

    #[test]
    fn predict_with_precomputed_context_is_bit_identical() {
        let (_, corpus, model) = trained();
        let at = &corpus.tables[0];
        let headers = at.table.headers();
        let vecs: Vec<Vec<f32>> = headers.iter().map(|h| model.header_vector(h)).collect();
        for (ci, col) in at.table.columns().iter().enumerate() {
            let neighbors: Vec<&str> = headers
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != ci)
                .map(|(_, h)| *h)
                .collect();
            let direct = model.predict(col, &neighbors);
            let neighbor_vecs: Vec<&[f32]> = vecs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != ci)
                .map(|(_, v)| v.as_slice())
                .collect();
            let ctx = model.context_of(&neighbor_vecs);
            let batched = model.predict_with_context(col, &ctx);
            assert_eq!(direct.candidates.len(), batched.candidates.len());
            for (a, b) in direct.candidates.iter().zip(&batched.candidates) {
                assert_eq!(a.ty, b.ty);
                assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
            }
        }
        // No neighbors → zero context, still identical.
        let col = at.table.column(0).unwrap();
        let lonely = model.predict(col, &[]);
        let zero_ctx = model.context_of(&[]);
        let batched = model.predict_with_context(col, &zero_ctx);
        assert_eq!(lonely.candidates, batched.candidates);
    }

    #[test]
    fn context_vector_shapes() {
        let e = Embedder::untrained(8);
        assert_eq!(context_vector(&e, 8, &[]), vec![0.0; 8]);
        let v = context_vector(&e, 8, &["salary", "name"]);
        assert_eq!(v.len(), 8);
        assert!(v.iter().any(|x| *x != 0.0));
    }
}
