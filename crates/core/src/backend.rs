//! Pluggable embedding-inference backends: the [`EmbeddingBackend`]
//! trait and the four built-in implementations behind
//! [`EmbeddingBackendKind`].
//!
//! The table-embedding step is the dominant cold-path cost of the
//! cascade, and "run the MLP head" is a seam with many profitable
//! implementations: the reference f32 forward pass, an i8-quantized
//! weight path, a blocked (8-lane, SIMD-friendly) f32 matmul, and a
//! batched whole-frontier path that amortizes one matmul per executor
//! chunk. Long-range, a remote model server is just another backend
//! behind the same trait (PAPERS.md's LLM line).
//!
//! # Contract
//!
//! Backends differ **only** in how they evaluate the MLP head.
//! Featurization ([`TableEmbeddingModel::features_with_context`]),
//! temperature calibration, and candidate thresholding
//! ([`TableEmbeddingModel::scores_from_logits`]) are shared, so every
//! backend scores the same feature vector through the same calibration
//! tail. Each backend declares an [`AccuracyClass`]:
//!
//! * [`BitExact`](AccuracyClass::BitExact) — produces the same bits as
//!   [`ReferenceF32`] ([`BatchedFrontier`] evaluates each output
//!   element in the reference accumulation order; only the loop
//!   nesting changes).
//! * [`Approximate`](AccuracyClass::Approximate) — numerically close
//!   but not bit-identical ([`QuantizedI8`] rounds weights and
//!   activations to i8; [`BlockedSimd`] reassociates the f32
//!   accumulation into 8 independent lanes). The golden-tolerance
//!   suite (`tests/embed_backends.rs`) holds these within tolerance on
//!   the e1–e8 eval corpora.
//!
//! Because approximate backends may change scores, the selected
//! backend is part of the cache fingerprint
//! ([`SigmaTyperConfig::fingerprint_into`]): cached step results from
//! one backend are never served to another. The default
//! ([`ReferenceF32`]) is fingerprinted as the *absence* of a backend
//! tag, so seed-era fingerprints — and any persisted cache tier built
//! before backends existed — stay valid.
//!
//! [`SigmaTyperConfig::fingerprint_into`]: crate::config::SigmaTyperConfig::fingerprint_into

use crate::embedstep::TableEmbeddingModel;
use crate::prediction::StepScores;
use std::any::Any;
use std::fmt;
use tu_ml::Mlp;
use tu_table::Column;

/// Opaque per-model state a backend computes once per table (weight
/// quantization, layout transforms) and reuses across every column —
/// carried inside the [`EmbeddingStep`](crate::step::EmbeddingStep)'s
/// table setup, so column-parallel chunks share one copy.
pub type BackendState = Box<dyn Any + Send + Sync>;

/// How a backend's scores relate to the reference implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccuracyClass {
    /// Bit-identical to [`ReferenceF32`] on every input.
    BitExact,
    /// Numerically close, not bit-identical; held within a golden
    /// tolerance on the e1–e8 eval corpora.
    Approximate,
}

/// One embedding-inference strategy over a [`TableEmbeddingModel`].
///
/// Implementations are stateless values (per-model working state rides
/// the [`BackendState`] returned by
/// [`prepare`](EmbeddingBackend::prepare)), shared by reference across
/// the executor's worker threads — hence `Send + Sync`.
pub trait EmbeddingBackend: fmt::Debug + Send + Sync {
    /// Stable wire name of this backend (what
    /// [`EmbeddingBackendKind::parse`] accepts and the server's
    /// `embedding_backend` option carries).
    fn name(&self) -> &'static str;

    /// Whether this backend reproduces [`ReferenceF32`]'s bits or only
    /// approximates them.
    fn accuracy_class(&self) -> AccuracyClass;

    /// Phrase vector of one raw header under `model`'s embedder — the
    /// unit of the neighbor-context encoding. The default delegates to
    /// [`TableEmbeddingModel::header_vector`]; a remote backend would
    /// encode through its own service here.
    fn encode_header(&self, model: &TableEmbeddingModel, header: &str) -> Vec<f32> {
        model.header_vector(header)
    }

    /// Per-model working state computed once per `(model, table)` and
    /// passed back into every predict call — e.g. [`QuantizedI8`]'s i8
    /// weight copy. The default has none.
    fn prepare(&self, model: &TableEmbeddingModel) -> Option<BackendState> {
        let _ = model;
        None
    }

    /// Score one column with a precomputed neighbor context (the
    /// backend-dispatched form of
    /// [`TableEmbeddingModel::predict_with_context`]). `state` is the
    /// value [`prepare`](EmbeddingBackend::prepare) returned for this
    /// model, when the caller amortized one; implementations must also
    /// work from `None` (recomputing per call).
    fn predict_with_context(
        &self,
        model: &TableEmbeddingModel,
        state: Option<&BackendState>,
        column: &Column,
        context: &[f32],
    ) -> StepScores;

    /// Score a whole frontier chunk in one call: one `(column,
    /// context)` pair per pending column, one [`StepScores`] out per
    /// pair, in order. The default maps
    /// [`predict_with_context`](EmbeddingBackend::predict_with_context);
    /// [`BatchedFrontier`] overrides it to run one matmul per layer
    /// over the whole chunk.
    fn predict_batch(
        &self,
        model: &TableEmbeddingModel,
        state: Option<&BackendState>,
        items: &[(&Column, &[f32])],
    ) -> Vec<StepScores> {
        items
            .iter()
            .map(|(column, context)| self.predict_with_context(model, state, column, context))
            .collect()
    }
}

/// Selector for the built-in backends — the `Copy` value that rides
/// [`SigmaTyperConfig`](crate::config::SigmaTyperConfig),
/// [`RequestOptions`](crate::request::RequestOptions), and the server's
/// `embedding_backend` option. Resolve to the actual implementation
/// with [`EmbeddingBackendKind::backend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmbeddingBackendKind {
    /// The reference f32 MLP forward pass — the default, bit-identical
    /// to the seed transcription.
    #[default]
    ReferenceF32,
    /// i8-quantized weights with one scale per layer and dynamic
    /// per-vector activation quantization.
    QuantizedI8,
    /// Blocked f32 matmul with 8 independent accumulator lanes (manual
    /// f32x8-style, no external deps).
    BlockedSimd,
    /// Whole-frontier batched evaluation: one matmul per layer per
    /// executor chunk instead of per column. Bit-exact.
    BatchedFrontier,
}

impl EmbeddingBackendKind {
    /// Every built-in backend, in fingerprint-tag order.
    pub const ALL: [EmbeddingBackendKind; 4] = [
        EmbeddingBackendKind::ReferenceF32,
        EmbeddingBackendKind::QuantizedI8,
        EmbeddingBackendKind::BlockedSimd,
        EmbeddingBackendKind::BatchedFrontier,
    ];

    /// The implementation behind this selector.
    #[must_use]
    pub fn backend(self) -> &'static dyn EmbeddingBackend {
        match self {
            EmbeddingBackendKind::ReferenceF32 => &ReferenceF32,
            EmbeddingBackendKind::QuantizedI8 => &QuantizedI8,
            EmbeddingBackendKind::BlockedSimd => &BlockedSimd,
            EmbeddingBackendKind::BatchedFrontier => &BatchedFrontier,
        }
    }

    /// Stable wire name (`"reference_f32"`, `"quantized_i8"`,
    /// `"blocked_simd"`, `"batched_frontier"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        self.backend().name()
    }

    /// Parse a wire name back into a selector. Unknown names are a
    /// typed [`UnknownBackendError`] (never a panic) so servers can
    /// turn them into a 400 with the valid names listed.
    ///
    /// # Errors
    /// Returns [`UnknownBackendError`] when `name` matches no built-in
    /// backend.
    pub fn parse(name: &str) -> Result<Self, UnknownBackendError> {
        Self::ALL
            .into_iter()
            .find(|kind| kind.label() == name)
            .ok_or_else(|| UnknownBackendError {
                requested: name.to_owned(),
            })
    }

    /// Nonzero fingerprint tag for non-default backends (the default is
    /// fingerprinted as absence — see the [module docs](self)).
    #[must_use]
    pub(crate) fn fingerprint_tag(self) -> u8 {
        match self {
            EmbeddingBackendKind::ReferenceF32 => 0,
            EmbeddingBackendKind::QuantizedI8 => 1,
            EmbeddingBackendKind::BlockedSimd => 2,
            EmbeddingBackendKind::BatchedFrontier => 3,
        }
    }
}

/// A backend name that matches no built-in backend — the typed error
/// [`EmbeddingBackendKind::parse`] returns, rendered with the valid
/// names so a server 400 is self-explanatory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBackendError {
    /// The name that failed to parse.
    pub requested: String,
}

impl fmt::Display for UnknownBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown embedding backend {:?}: expected one of ",
            self.requested
        )?;
        for (i, kind) in EmbeddingBackendKind::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{:?}", kind.label())?;
        }
        Ok(())
    }
}

impl std::error::Error for UnknownBackendError {}

/// The reference backend: the model's own f32 forward pass, bit for
/// bit. Always the default; every golden-equivalence suite runs
/// against it.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceF32;

impl EmbeddingBackend for ReferenceF32 {
    fn name(&self) -> &'static str {
        "reference_f32"
    }

    fn accuracy_class(&self) -> AccuracyClass {
        AccuracyClass::BitExact
    }

    fn predict_with_context(
        &self,
        model: &TableEmbeddingModel,
        _state: Option<&BackendState>,
        column: &Column,
        context: &[f32],
    ) -> StepScores {
        model.predict_with_context(column, context)
    }
}

/// i8-quantized inference: weights are rounded once per model to i8
/// with one f32 scale per layer ([`prepare`](EmbeddingBackend::prepare)
/// pays this once per table); activations are quantized dynamically per
/// vector. The inner product accumulates in i32 — integer adds are
/// associative, so the compiler is free to vectorize the i8×i8→i32
/// kernel — and dequantizes with `weight_scale × activation_scale`.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuantizedI8;

/// One layer's quantized parameters.
#[derive(Debug)]
struct QuantizedLayer {
    cols: usize,
    q: Vec<i8>,
    scale: f32,
    bias: Vec<f32>,
}

/// The per-model state [`QuantizedI8`] prepares: every layer quantized.
#[derive(Debug)]
struct QuantizedMlp {
    layers: Vec<QuantizedLayer>,
}

/// Round an f32 slice to i8 at `scale` (symmetric, clamped to ±127).
fn quantize_i8(values: &[f32], scale: f32) -> Vec<i8> {
    values
        .iter()
        .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
        .collect()
}

/// Symmetric quantization scale for a slice: `max|v| / 127`, with 1.0
/// for an all-zero slice so the division stays finite.
fn i8_scale(values: &[f32]) -> f32 {
    let max = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if max > 0.0 {
        max / 127.0
    } else {
        1.0
    }
}

impl QuantizedMlp {
    fn from_model(model: &TableEmbeddingModel) -> Self {
        let mlp = model.mlp();
        let layers = (0..mlp.n_layers())
            .map(|i| {
                let (w, b) = mlp.layer_params(i);
                let scale = i8_scale(w.data());
                QuantizedLayer {
                    cols: w.cols,
                    q: quantize_i8(w.data(), scale),
                    scale,
                    bias: b.to_vec(),
                }
            })
            .collect();
        QuantizedMlp { layers }
    }

    fn logits(&self, features: &[f32]) -> Vec<f32> {
        let mut cur = features.to_vec();
        for (li, layer) in self.layers.iter().enumerate() {
            let a_scale = i8_scale(&cur);
            let qx = quantize_i8(&cur, a_scale);
            let out_scale = layer.scale * a_scale;
            let rows = layer.bias.len();
            let mut z = vec![0.0f32; rows];
            for (r, zr) in z.iter_mut().enumerate() {
                let row = &layer.q[r * layer.cols..(r + 1) * layer.cols];
                let acc: i32 = row
                    .iter()
                    .zip(&qx)
                    .map(|(&w, &a)| i32::from(w) * i32::from(a))
                    .sum();
                *zr = acc as f32 * out_scale + layer.bias[r];
            }
            if li + 1 != self.layers.len() {
                for v in &mut z {
                    *v = v.max(0.0); // ReLU
                }
            }
            cur = z;
        }
        cur
    }
}

impl EmbeddingBackend for QuantizedI8 {
    fn name(&self) -> &'static str {
        "quantized_i8"
    }

    fn accuracy_class(&self) -> AccuracyClass {
        AccuracyClass::Approximate
    }

    fn prepare(&self, model: &TableEmbeddingModel) -> Option<BackendState> {
        Some(Box::new(QuantizedMlp::from_model(model)))
    }

    fn predict_with_context(
        &self,
        model: &TableEmbeddingModel,
        state: Option<&BackendState>,
        column: &Column,
        context: &[f32],
    ) -> StepScores {
        let f = model.features_with_context(column, context);
        let logits = match state.and_then(|s| s.downcast_ref::<QuantizedMlp>()) {
            Some(qm) => qm.logits(&f),
            None => QuantizedMlp::from_model(model).logits(&f),
        };
        model.scores_from_logits(&logits)
    }
}

/// Blocked f32 inference: each dot product runs over 8 independent
/// accumulator lanes (a manual f32x8), so the compiler can keep the
/// multiply-adds in vector registers instead of the reference path's
/// serial dependency chain. Reassociating f32 addition changes the
/// bits, hence [`Approximate`](AccuracyClass::Approximate).
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockedSimd;

/// 8-lane blocked dot product. The lane reduction tree is fixed
/// (pairwise over strides of 4 and 2) so results are deterministic
/// across calls and platforms — approximate relative to the reference,
/// but stable.
fn blocked_dot(row: &[f32], x: &[f32]) -> f32 {
    const LANES: usize = 8;
    let mut acc = [0.0f32; LANES];
    let blocks = row.len() / LANES;
    for i in 0..blocks {
        let r = &row[i * LANES..(i + 1) * LANES];
        let v = &x[i * LANES..(i + 1) * LANES];
        for l in 0..LANES {
            acc[l] += r[l] * v[l];
        }
    }
    let mut tail = 0.0f32;
    for i in blocks * LANES..row.len() {
        tail += row[i] * x[i];
    }
    let half = [
        acc[0] + acc[4],
        acc[1] + acc[5],
        acc[2] + acc[6],
        acc[3] + acc[7],
    ];
    ((half[0] + half[2]) + (half[1] + half[3])) + tail
}

/// Blocked forward pass over the model's own f32 weights.
fn blocked_logits(mlp: &Mlp, features: &[f32]) -> Vec<f32> {
    let mut cur = features.to_vec();
    for li in 0..mlp.n_layers() {
        let (w, b) = mlp.layer_params(li);
        let mut z = vec![0.0f32; w.rows];
        for (r, zr) in z.iter_mut().enumerate() {
            *zr = blocked_dot(w.row(r), &cur) + b[r];
        }
        if li + 1 != mlp.n_layers() {
            for v in &mut z {
                *v = v.max(0.0); // ReLU
            }
        }
        cur = z;
    }
    cur
}

impl EmbeddingBackend for BlockedSimd {
    fn name(&self) -> &'static str {
        "blocked_simd"
    }

    fn accuracy_class(&self) -> AccuracyClass {
        AccuracyClass::Approximate
    }

    fn predict_with_context(
        &self,
        model: &TableEmbeddingModel,
        _state: Option<&BackendState>,
        column: &Column,
        context: &[f32],
    ) -> StepScores {
        let f = model.features_with_context(column, context);
        model.scores_from_logits(&blocked_logits(model.mlp(), &f))
    }
}

/// Whole-frontier batched inference: featurize every pending column,
/// then walk the layers once with the column loop *inside* — one
/// logical matmul per layer per chunk, so each weight row is streamed
/// through cache once per chunk instead of once per column. Every
/// output element accumulates in the reference order
/// ([`tu_ml::Matrix::matvec_into`]), so the result is bit-exact; only
/// the loop nesting is amortized.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchedFrontier;

/// Layer-major forward pass over a batch of feature vectors, reference
/// accumulation order per element.
fn batched_logits(mlp: &Mlp, batch: &mut [Vec<f32>]) {
    for li in 0..mlp.n_layers() {
        let (w, b) = mlp.layer_params(li);
        let last = li + 1 == mlp.n_layers();
        for x in batch.iter_mut() {
            let mut z = vec![0.0f32; w.rows];
            w.matvec_into(x, &mut z);
            for (zi, &bi) in z.iter_mut().zip(b) {
                *zi += bi;
            }
            if !last {
                for v in &mut z {
                    *v = v.max(0.0); // ReLU
                }
            }
            *x = z;
        }
    }
}

impl EmbeddingBackend for BatchedFrontier {
    fn name(&self) -> &'static str {
        "batched_frontier"
    }

    fn accuracy_class(&self) -> AccuracyClass {
        AccuracyClass::BitExact
    }

    fn predict_with_context(
        &self,
        model: &TableEmbeddingModel,
        state: Option<&BackendState>,
        column: &Column,
        context: &[f32],
    ) -> StepScores {
        self.predict_batch(model, state, &[(column, context)])
            .pop()
            .expect("one score per item")
    }

    fn predict_batch(
        &self,
        model: &TableEmbeddingModel,
        _state: Option<&BackendState>,
        items: &[(&Column, &[f32])],
    ) -> Vec<StepScores> {
        let mut batch: Vec<Vec<f32>> = items
            .iter()
            .map(|(column, context)| model.features_with_context(column, context))
            .collect();
        batched_logits(model.mlp(), &mut batch);
        batch
            .iter()
            .map(|logits| model.scores_from_logits(logits))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_through_labels() {
        for kind in EmbeddingBackendKind::ALL {
            assert_eq!(EmbeddingBackendKind::parse(kind.label()), Ok(kind));
            assert_eq!(kind.backend().name(), kind.label());
        }
        assert_eq!(EmbeddingBackendKind::default().label(), "reference_f32");
    }

    #[test]
    fn unknown_backend_is_a_typed_listing_error() {
        let err = EmbeddingBackendKind::parse("warp_drive").unwrap_err();
        assert_eq!(err.requested, "warp_drive");
        let msg = err.to_string();
        for kind in EmbeddingBackendKind::ALL {
            assert!(msg.contains(kind.label()), "{msg}");
        }
        // It is a real std error, usable behind `dyn Error`.
        let dynamic: Box<dyn std::error::Error> = Box::new(err);
        assert!(dynamic.to_string().contains("warp_drive"));
    }

    #[test]
    fn accuracy_classes_are_declared() {
        use EmbeddingBackendKind as K;
        assert_eq!(
            K::ReferenceF32.backend().accuracy_class(),
            AccuracyClass::BitExact
        );
        assert_eq!(
            K::BatchedFrontier.backend().accuracy_class(),
            AccuracyClass::BitExact
        );
        assert_eq!(
            K::QuantizedI8.backend().accuracy_class(),
            AccuracyClass::Approximate
        );
        assert_eq!(
            K::BlockedSimd.backend().accuracy_class(),
            AccuracyClass::Approximate
        );
    }

    #[test]
    fn fingerprint_tags_are_distinct_and_default_is_zero() {
        let mut seen = std::collections::HashSet::new();
        for kind in EmbeddingBackendKind::ALL {
            assert!(seen.insert(kind.fingerprint_tag()));
        }
        assert_eq!(EmbeddingBackendKind::default().fingerprint_tag(), 0);
    }

    #[test]
    fn blocked_dot_matches_reference_within_tolerance() {
        let row: Vec<f32> = (0..67)
            .map(|i| ((i * 37) % 19) as f32 * 0.13 - 1.1)
            .collect();
        let x: Vec<f32> = (0..67)
            .map(|i| ((i * 53) % 23) as f32 * 0.07 - 0.8)
            .collect();
        let reference: f32 = row.iter().zip(&x).map(|(a, b)| a * b).sum();
        let blocked = blocked_dot(&row, &x);
        assert!(
            (reference - blocked).abs() <= reference.abs().max(1.0) * 1e-5,
            "blocked {blocked} vs reference {reference}"
        );
        // Degenerate shapes.
        assert_eq!(blocked_dot(&[], &[]), 0.0);
        assert_eq!(blocked_dot(&[2.0], &[3.0]), 6.0);
    }

    #[test]
    fn i8_quantization_round_trips_within_scale() {
        let values = [0.5f32, -1.0, 0.0, 0.25, -0.125];
        let scale = i8_scale(&values);
        let q = quantize_i8(&values, scale);
        for (&v, &qi) in values.iter().zip(&q) {
            let back = f32::from(qi) * scale;
            assert!((v - back).abs() <= scale / 2.0 + 1e-7, "{v} -> {back}");
        }
        assert_eq!(i8_scale(&[0.0, 0.0]), 1.0);
    }
}
