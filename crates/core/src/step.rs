//! The pluggable cascade step API: [`AnnotationStep`] and the built-in
//! step implementations.
//!
//! The paper's cascade (Figure 4) is meant to be customized per
//! deployment — Sigma adds, removes, and tunes steps per customer.
//! Every signal source is therefore an [`AnnotationStep`]: an object
//! with a stable [`StepId`], a display name, a per-column skip
//! predicate (the cascade's early-exit gate), and a scoring function
//! over a [`StepContext`]. The [`Cascade`](crate::cascade::Cascade)
//! runs an ordered list of them; user code registers additional steps
//! through [`SigmaTyper::builder`](crate::system::SigmaTyper::builder).

use crate::backend::{BackendState, EmbeddingBackend};
use crate::cache::ColumnFingerprint;
use crate::config::SigmaTyperConfig;
use crate::embedstep::TableEmbeddingModel;
use crate::global::GlobalModel;
use crate::local::LocalModel;
use crate::prediction::{Candidate, StepId, StepScores};
use tu_dp::LabelingFunction;
use tu_ontology::TypeId;
use tu_table::{Column, Table};

/// One column's cascade state at the current step: the quantities that
/// vary per column while everything else in a [`StepContext`] is shared
/// across the whole table.
///
/// The [`CascadeExecutor`](crate::executor::CascadeExecutor) recomputes
/// one `ColumnState` per column before each step and exposes the full
/// slice through [`StepContext::column_states`], which is what lets
/// [`AnnotationStep::run_batch`] derive exact per-column contexts via
/// [`StepContext::for_column`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ColumnState {
    /// Best confidence any earlier step achieved for this column.
    pub best_so_far: f64,
    /// The column's cache fingerprint for the current run (`None`
    /// when no step cache is configured).
    pub fingerprint: Option<ColumnFingerprint>,
}

/// Everything a step may consult when scoring one column.
///
/// Borrowed per column per step by the cascade; steps must treat it as
/// read-only (inference never mutates the models).
#[derive(Debug, Clone, Copy)]
pub struct StepContext<'a> {
    /// The table being annotated.
    pub table: &'a Table,
    /// Index of the column this step is scoring.
    pub col_idx: usize,
    /// Normalized headers for every column of the table.
    pub normalized_headers: &'a [String],
    /// Tentative per-column types: for each column, the type of the
    /// highest-confidence candidate any *earlier* step produced
    /// (`TypeId::UNKNOWN` where nothing scored yet). Context for
    /// co-occurrence signals.
    pub tentative: &'a [TypeId],
    /// Best confidence any earlier step achieved for *this* column —
    /// the quantity the cascade threshold gates on.
    pub best_so_far: f64,
    /// The shared global model.
    pub global: &'a GlobalModel,
    /// The customer's local model.
    pub local: &'a LocalModel,
    /// The active configuration.
    pub config: &'a SigmaTyperConfig,
    /// This column's cache identity for the current run, when the
    /// owning [`SigmaTyper`](crate::system::SigmaTyper) has a step
    /// cache configured (`None` otherwise). Computed once per column
    /// per table by the cascade; steps may use it to key caches of
    /// their own.
    pub fingerprint: Option<ColumnFingerprint>,
    /// Per-column cascade state for *every* column of the table at
    /// this step, indexed by column. The executor always fills this;
    /// hand-constructed contexts (the fields are public for testing
    /// custom steps) may leave it empty, in which case
    /// [`StepContext::for_column`] falls back to a default state.
    pub column_states: &'a [ColumnState],
}

impl<'a> StepContext<'a> {
    /// The column being scored.
    ///
    /// # Panics
    /// Panics when `col_idx` is out of range for `table`. Contexts
    /// built by the cascade are always in range; a hand-constructed
    /// context (the fields are public for testing custom steps) must
    /// uphold this itself.
    #[must_use]
    pub fn column(&self) -> &'a Column {
        self.table.column(self.col_idx).expect("column in range")
    }

    /// The raw header of the column being scored.
    ///
    /// # Panics
    /// Panics when `col_idx` is out of range (see [`StepContext::column`]).
    #[must_use]
    pub fn header(&self) -> &'a str {
        self.table.columns()[self.col_idx].name.as_str()
    }

    /// The normalized header of the column being scored.
    ///
    /// # Panics
    /// Panics when `col_idx` is out of range of `normalized_headers`
    /// (see [`StepContext::column`]).
    #[must_use]
    pub fn normalized_header(&self) -> &'a str {
        &self.normalized_headers[self.col_idx]
    }

    /// Tentative types of the *other* columns (unknowns dropped) — the
    /// neighbor context the lookup step feeds its co-occurrence LFs.
    #[must_use]
    pub fn neighbor_types(&self) -> Vec<TypeId> {
        self.tentative
            .iter()
            .enumerate()
            .filter(|(i, t)| *i != self.col_idx && !t.is_unknown())
            .map(|(_, t)| *t)
            .collect()
    }

    /// Raw headers of the *other* columns — the neighbor context the
    /// embedding step encodes.
    #[must_use]
    pub fn neighbor_headers(&self) -> Vec<&'a str> {
        self.table
            .columns()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != self.col_idx)
            .map(|(_, c)| c.name.as_str())
            .collect()
    }

    /// The same table-level context re-focused on a sibling column:
    /// everything shared stays shared, while `col_idx`, `best_so_far`,
    /// and `fingerprint` are taken from [`StepContext::column_states`].
    /// This is how [`AnnotationStep::run_batch`] derives the exact
    /// per-column context the sequential path would have built.
    ///
    /// Hand-constructed contexts with an empty `column_states` slice
    /// fall back to [`ColumnState::default`] (no prior confidence, no
    /// fingerprint) for columns the slice does not cover.
    #[must_use]
    pub fn for_column(&self, col_idx: usize) -> StepContext<'a> {
        let state = self.column_states.get(col_idx).copied().unwrap_or_default();
        StepContext {
            col_idx,
            best_so_far: state.best_so_far,
            fingerprint: state.fingerprint,
            ..*self
        }
    }
}

/// Opaque table-level setup produced once per `(step, table)` by
/// [`AnnotationStep::prepare`] and shared by reference across every
/// chunk of the step's frontier — including chunks running on
/// different worker threads (hence `Send + Sync`). Steps downcast it
/// back in [`AnnotationStep::run_prepared`].
pub type TableSetup = Box<dyn std::any::Any + Send + Sync>;

/// One pluggable stage of the annotation cascade.
///
/// Implementations must be deterministic and read-only: `run` is called
/// from multiple [`AnnotationService`](crate::service::AnnotationService)
/// worker threads against one shared instance (hence `Send + Sync`).
pub trait AnnotationStep: std::fmt::Debug + Send + Sync {
    /// Stable identity of this step, used in [`ColumnAnnotation::steps_run`],
    /// vote weighting, telemetry, and builder addressing. Custom steps
    /// should allocate theirs via [`StepId::custom`].
    ///
    /// [`ColumnAnnotation::steps_run`]: crate::prediction::ColumnAnnotation::steps_run
    fn id(&self) -> StepId;

    /// Human-readable name, reported in [`StepTiming`](crate::prediction::StepTiming).
    fn name(&self) -> &str;

    /// Per-column skip predicate: `true` means the cascade must not run
    /// this step for the context's column. The default is the paper's
    /// early-exit rule — skip once an earlier step already met the
    /// cascade confidence threshold. Override to add ablation gates or
    /// applicability checks (e.g. numeric-only steps skipping text
    /// columns).
    fn skip(&self, ctx: &StepContext<'_>) -> bool {
        ctx.best_so_far >= ctx.config.cascade_threshold
    }

    /// Score one column. Return [`StepScores::default`] when the step
    /// has no opinion; an executed step is recorded in `steps_run` even
    /// with empty scores (so telemetry distinguishes "ran, found
    /// nothing" from "skipped").
    fn run(&self, ctx: &StepContext<'_>) -> StepScores;

    /// Score a batch of columns of one table in a single call.
    ///
    /// `ctx` is the context of `cols[0]`; implementations derive the
    /// other columns' contexts with [`StepContext::for_column`]. The
    /// returned vector must hold exactly one [`StepScores`] per entry
    /// of `cols`, in order — the
    /// [`CascadeExecutor`](crate::executor::CascadeExecutor) enforces
    /// the length.
    ///
    /// The default loops [`AnnotationStep::run`]. Override it when
    /// per-table setup is worth amortizing across columns (the
    /// built-in [`EmbeddingStep`] encodes each header once per table
    /// instead of once per neighbor pair; [`LookupStep`] filters the
    /// labeling-function banks once per table) — but any override
    /// **must** stay bit-identical to mapping `run` over the same
    /// per-column contexts, and must produce the same bits regardless
    /// of how the executor chunks the frontier across calls. The
    /// golden-equivalence suite (`tests/golden_cascade.rs`) holds the
    /// built-ins to that contract.
    fn run_batch(&self, ctx: &StepContext<'_>, cols: &[usize]) -> Vec<StepScores> {
        cols.iter()
            .map(|&ci| self.run(&ctx.for_column(ci)))
            .collect()
    }

    /// Compute the table-level setup this step wants amortized across
    /// *all* chunks of one frontier — not just within one
    /// [`run_batch`](AnnotationStep::run_batch) call. The
    /// [`CascadeExecutor`](crate::executor::CascadeExecutor) calls
    /// this exactly once per `(step, table)` with a non-empty frontier
    /// and hands the result (by reference) to every chunk's
    /// [`run_prepared`](AnnotationStep::run_prepared), so
    /// column-parallel workers share one setup instead of each paying
    /// it inside their own thread.
    ///
    /// The default returns `None` (no shared setup; chunks fall back
    /// to [`run_batch`](AnnotationStep::run_batch)). Overriders must
    /// keep the setup a pure function of the table-level context —
    /// anything per-column belongs in `run_prepared`.
    fn prepare(&self, ctx: &StepContext<'_>) -> Option<TableSetup> {
        let _ = ctx;
        None
    }

    /// Score a batch of columns using a setup produced by
    /// [`prepare`](AnnotationStep::prepare) on the same table. Same
    /// contract as [`run_batch`](AnnotationStep::run_batch): one
    /// [`StepScores`] per entry of `cols`, in order, bit-identical to
    /// mapping [`run`](AnnotationStep::run) — regardless of chunking
    /// *and* regardless of whether the setup was shared or rebuilt.
    ///
    /// The default ignores the setup and delegates to
    /// [`run_batch`](AnnotationStep::run_batch); implementations that
    /// override [`prepare`](AnnotationStep::prepare) should downcast
    /// `setup` and fall back to `run_batch` when the downcast fails (a
    /// foreign executor may hand them someone else's setup).
    fn run_prepared(
        &self,
        ctx: &StepContext<'_>,
        cols: &[usize],
        setup: &TableSetup,
    ) -> Vec<StepScores> {
        let _ = setup;
        self.run_batch(ctx, cols)
    }

    /// Should the executor memoize this step's results in the
    /// [`StepCache`](crate::cache::StepCache)? Defaults to `true`.
    /// Cheap steps whose memo traffic (fingerprint lookup + clone +
    /// insert) rivals the step itself — the built-in [`HeaderStep`] —
    /// return `false` and simply re-run on every crawl; the cache is
    /// never consulted for them, so their
    /// [`StepTiming`](crate::prediction::StepTiming) reports zero
    /// hits, misses, and inserts.
    fn cacheable(&self) -> bool {
        true
    }

    /// How tolerant this step's signal is to small column deltas, as a
    /// multiplier on the request's base sensitivity threshold (see
    /// [`SigmaTyperConfig::delta_sensitivity`](crate::config::SigmaTyperConfig::delta_sensitivity)).
    /// During a delta-aware recrawl a cacheable step reuses the base
    /// crawl's cached scores for a column whose
    /// [`movement`](tu_table::ColumnDelta::movement) is at or below
    /// `base_sensitivity × sensitivity_factor()`.
    ///
    /// Defaults to `1.0`. Steps whose signal aggregates over the whole
    /// column — so a few appended rows barely move it — may return a
    /// larger factor (the built-in [`EmbeddingStep`] does); steps that
    /// key on individual values should stay at or below `1.0`. The
    /// factor never affects what an executed step scores, only whether
    /// it re-runs, and reuse is disabled entirely at base sensitivity
    /// `0`.
    fn sensitivity_factor(&self) -> f64 {
        1.0
    }
}

/// Built-in step 1: header matching (syntactic + semantic), with the
/// customer's contextual global-weight discount `Wg` applied.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeaderStep;

impl AnnotationStep for HeaderStep {
    fn id(&self) -> StepId {
        StepId::HEADER
    }

    fn name(&self) -> &str {
        "header"
    }

    fn skip(&self, ctx: &StepContext<'_>) -> bool {
        !ctx.config.enable_header || ctx.best_so_far >= ctx.config.cascade_threshold
    }

    fn run(&self, ctx: &StepContext<'_>) -> StepScores {
        let mut scores =
            ctx.global
                .header
                .match_header(ctx.header(), &ctx.global.embedder, ctx.config);
        // Wg: global header knowledge the customer has repeatedly
        // overridden in this header context loses influence (Fig. 2).
        for c in &mut scores.candidates {
            c.confidence *= ctx.local.wg(c.ty, ctx.normalized_header());
        }
        scores
    }

    /// Header matching is a hash-map probe plus one small embedding
    /// similarity — the memo traffic (fingerprint keying, score clone,
    /// LRU insert) costs about as much as just running it, so the
    /// cache admission policy keeps it out (ROADMAP: cache admission).
    fn cacheable(&self) -> bool {
        false
    }
}

/// Built-in step 2: value lookup — labeling functions, knowledge-base
/// dictionaries, and the regex bank, with `Wg` discounting on all
/// globally sourced candidates.
#[derive(Debug, Clone, Copy, Default)]
pub struct LookupStep;

impl AnnotationStep for LookupStep {
    fn id(&self) -> StepId {
        StepId::LOOKUP
    }

    fn name(&self) -> &str {
        "lookup"
    }

    fn skip(&self, ctx: &StepContext<'_>) -> bool {
        !ctx.config.enable_lookup || ctx.best_so_far >= ctx.config.cascade_threshold
    }

    fn run(&self, ctx: &StepContext<'_>) -> StepScores {
        let neighbors = ctx.neighbor_types();
        ctx.global.lookup.lookup_weighted(
            ctx.column(),
            ctx.normalized_header(),
            &neighbors,
            &[&ctx.global.global_lfs, &ctx.local.lfs],
            ctx.config,
            &|t| ctx.local.wg(t, ctx.normalized_header()),
        )
    }

    /// Batch override: the identity-LF subset of the global + local
    /// banks is the same for every column of the table, so it is
    /// filtered once per batch instead of once per column — on an
    /// adapted customer the local bank grows with every feedback
    /// event, and the per-column filter pass grows with it.
    fn run_batch(&self, ctx: &StepContext<'_>, cols: &[usize]) -> Vec<StepScores> {
        self.scores_with(ctx, cols, &LookupSetup::for_table(ctx))
    }

    /// Table-level setup shared across *chunks*: the identity-LF
    /// filter pass over the global + local banks, stored as positions
    /// (`'static`, so one pass serves every column-parallel worker —
    /// the per-chunk `run_batch` override above only amortized it
    /// within a chunk).
    fn prepare(&self, ctx: &StepContext<'_>) -> Option<TableSetup> {
        Some(Box::new(LookupSetup::for_table(ctx)))
    }

    fn run_prepared(
        &self,
        ctx: &StepContext<'_>,
        cols: &[usize],
        setup: &TableSetup,
    ) -> Vec<StepScores> {
        match setup.downcast_ref::<LookupSetup>() {
            Some(setup) => self.scores_with(ctx, cols, setup),
            // Foreign setup (a custom executor mixed things up): stay
            // correct by rebuilding our own.
            None => self.run_batch(ctx, cols),
        }
    }
}

/// [`LookupStep`]'s table-level setup: positions of the identity-style
/// LFs within the `[global, local]` bank pair (see
/// [`ValueLookup::identity_lf_indices`](crate::lookupstep::ValueLookup::identity_lf_indices)).
#[derive(Debug)]
struct LookupSetup {
    identity: Vec<(usize, usize)>,
}

impl LookupSetup {
    fn for_table(ctx: &StepContext<'_>) -> Self {
        let banks: [&[LabelingFunction]; 2] = [&ctx.global.global_lfs, &ctx.local.lfs];
        LookupSetup {
            identity: crate::lookupstep::ValueLookup::identity_lf_indices(&banks),
        }
    }
}

impl LookupStep {
    /// The shared scoring core: re-borrow the prefiltered LF positions
    /// against this context's banks and run the per-column lookups.
    /// Order-preserving, so the result is bit-identical to the
    /// unfiltered per-column path (proven in the golden suite).
    fn scores_with(
        &self,
        ctx: &StepContext<'_>,
        cols: &[usize],
        setup: &LookupSetup,
    ) -> Vec<StepScores> {
        let banks: [&[LabelingFunction]; 2] = [&ctx.global.global_lfs, &ctx.local.lfs];
        let identity: Vec<&LabelingFunction> = setup
            .identity
            .iter()
            .map(|&(bank, lf)| &banks[bank][lf])
            .collect();
        cols.iter()
            .map(|&ci| {
                let c = ctx.for_column(ci);
                let neighbors = c.neighbor_types();
                c.global.lookup.lookup_with_lfs(
                    c.column(),
                    c.normalized_header(),
                    &neighbors,
                    &identity,
                    c.config,
                    &|t| c.local.wg(t, c.normalized_header()),
                )
            })
            .collect()
    }
}

/// Built-in step 3: the table-embedding model, blending the finetuned
/// local model (when one exists) with the global one under the
/// adaptation weights `Wl`/`Wg`.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmbeddingStep;

impl AnnotationStep for EmbeddingStep {
    fn id(&self) -> StepId {
        StepId::EMBEDDING
    }

    fn name(&self) -> &str {
        "embedding"
    }

    fn skip(&self, ctx: &StepContext<'_>) -> bool {
        !ctx.config.enable_embedding || ctx.best_so_far >= ctx.config.cascade_threshold
    }

    fn run(&self, ctx: &StepContext<'_>) -> StepScores {
        let backend = ctx.config.embedding_backend.backend();
        let neighbors = ctx.neighbor_headers();
        let column = ctx.column();
        let scores_for = |model: &TableEmbeddingModel| {
            let vecs: Vec<Vec<f32>> = neighbors
                .iter()
                .map(|h| backend.encode_header(model, h))
                .collect();
            let refs: Vec<&[f32]> = vecs.iter().map(Vec::as_slice).collect();
            let context = model.context_of(&refs);
            backend.predict_with_context(model, None, column, &context)
        };
        let global_scores = scores_for(&ctx.global.embedding);
        match &ctx.local.finetuned {
            Some(local_model) => {
                let local_scores = scores_for(local_model);
                blend(
                    &global_scores,
                    &local_scores,
                    ctx.local,
                    ctx.normalized_header(),
                )
            }
            None => global_scores,
        }
    }

    /// Batch override: each header's phrase vector is encoded once per
    /// batch call instead of once per `(column, neighbor)` — the
    /// neighbor-context encoding is quadratic in table width on the
    /// per-column path. The per-column mean is accumulated over the
    /// precomputed vectors in the same order `predict` would have
    /// used, so the result is bit-identical (see
    /// [`TableEmbeddingModel::context_of`]). Chunked executors share
    /// one encoding across *all* chunks through
    /// [`prepare`](AnnotationStep::prepare)/[`run_prepared`](AnnotationStep::run_prepared)
    /// below, so even a `FixedChunk { columns: 1 }` policy pays the
    /// setup once per table.
    ///
    /// [`TableEmbeddingModel::context_of`]: crate::embedstep::TableEmbeddingModel::context_of
    fn run_batch(&self, ctx: &StepContext<'_>, cols: &[usize]) -> Vec<StepScores> {
        self.scores_with(ctx, cols, &EmbedSetup::for_table(ctx))
    }

    /// Table-level setup shared across chunks: every header encoded
    /// once per `(model, table)` — previously each column-parallel
    /// chunk re-encoded its own copy inside its worker thread.
    fn prepare(&self, ctx: &StepContext<'_>) -> Option<TableSetup> {
        Some(Box::new(EmbedSetup::for_table(ctx)))
    }

    fn run_prepared(
        &self,
        ctx: &StepContext<'_>,
        cols: &[usize],
        setup: &TableSetup,
    ) -> Vec<StepScores> {
        match setup.downcast_ref::<EmbedSetup>() {
            Some(setup) => self.scores_with(ctx, cols, setup),
            None => self.run_batch(ctx, cols),
        }
    }

    /// The embedding signal is a mean over sampled cell vectors: a few
    /// appended rows shift the column embedding proportionally to
    /// their mass, so the step tolerates twice the base movement
    /// before a re-run pays for itself — and it is the most expensive
    /// step, so each avoided re-run is worth the most.
    fn sensitivity_factor(&self) -> f64 {
        2.0
    }
}

/// [`EmbeddingStep`]'s table-level setup: the resolved
/// [`EmbeddingBackend`], each header's phrase vector (encoded once per
/// model through the backend), and the backend's prepared per-model
/// state (e.g. [`QuantizedI8`](crate::backend::QuantizedI8)'s i8
/// weight copy — paid once per table, shared by every column-parallel
/// chunk). The finetuned model's embedder is a clone of the global
/// one, but its vectors are encoded through its own instance so the
/// equivalence argument never leans on clone identity.
struct EmbedSetup {
    backend: &'static dyn EmbeddingBackend,
    global_vecs: Vec<Vec<f32>>,
    local_vecs: Option<Vec<Vec<f32>>>,
    global_state: Option<BackendState>,
    local_state: Option<BackendState>,
}

impl std::fmt::Debug for EmbedSetup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbedSetup")
            .field("backend", &self.backend.name())
            .field("global_vecs", &self.global_vecs.len())
            .field("local_vecs", &self.local_vecs.as_ref().map(Vec::len))
            .field("global_state", &self.global_state.is_some())
            .field("local_state", &self.local_state.is_some())
            .finish()
    }
}

impl EmbedSetup {
    fn for_table(ctx: &StepContext<'_>) -> Self {
        let backend = ctx.config.embedding_backend.backend();
        let headers = ctx.table.headers();
        let global_model = &ctx.global.embedding;
        let local_model = ctx.local.finetuned.as_ref();
        EmbedSetup {
            backend,
            global_vecs: headers
                .iter()
                .map(|h| backend.encode_header(global_model, h))
                .collect(),
            local_vecs: local_model.map(|m| {
                headers
                    .iter()
                    .map(|h| backend.encode_header(m, h))
                    .collect()
            }),
            global_state: backend.prepare(global_model),
            local_state: local_model.and_then(|m| backend.prepare(m)),
        }
    }
}

impl EmbeddingStep {
    /// The shared scoring core over precomputed header vectors: build
    /// every pending column's neighbor context, then hand the whole
    /// chunk to the backend's
    /// [`predict_batch`](EmbeddingBackend::predict_batch) — one call
    /// per model per chunk, which is what lets
    /// [`BatchedFrontier`](crate::backend::BatchedFrontier) amortize
    /// one matmul per layer across the frontier.
    fn scores_with(
        &self,
        ctx: &StepContext<'_>,
        cols: &[usize],
        setup: &EmbedSetup,
    ) -> Vec<StepScores> {
        let global_model = &ctx.global.embedding;
        let local_model = ctx.local.finetuned.as_ref();
        fn neighbors_of(vecs: &[Vec<f32>], ci: usize) -> Vec<&[f32]> {
            vecs.iter()
                .enumerate()
                .filter(|(i, _)| *i != ci)
                .map(|(_, v)| v.as_slice())
                .collect()
        }
        let batch_for =
            |model: &TableEmbeddingModel, vecs: &[Vec<f32>], state: Option<&BackendState>| {
                let contexts: Vec<Vec<f32>> = cols
                    .iter()
                    .map(|&ci| model.context_of(&neighbors_of(vecs, ci)))
                    .collect();
                let items: Vec<(&Column, &[f32])> = cols
                    .iter()
                    .zip(&contexts)
                    .map(|(&ci, c)| {
                        let column = ctx.table.column(ci).expect("column in range");
                        (column, c.as_slice())
                    })
                    .collect();
                setup.backend.predict_batch(model, state, &items)
            };
        let global_batch = batch_for(
            global_model,
            &setup.global_vecs,
            setup.global_state.as_ref(),
        );
        match (local_model, &setup.local_vecs) {
            (Some(m), Some(lv)) => {
                let local_batch = batch_for(m, lv, setup.local_state.as_ref());
                cols.iter()
                    .zip(global_batch.iter().zip(&local_batch))
                    .map(|(&ci, (global_scores, local_scores))| {
                        let c = ctx.for_column(ci);
                        blend(global_scores, local_scores, c.local, c.normalized_header())
                    })
                    .collect()
            }
            _ => global_batch,
        }
    }
}

/// Blend global and local embedding scores with the per-type local
/// weights `Wl` ("the weight of the local model increases over time",
/// Figure 2).
fn blend(
    global: &StepScores,
    local_scores: &StepScores,
    local: &LocalModel,
    normalized_header: &str,
) -> StepScores {
    let mut types: Vec<TypeId> = global
        .candidates
        .iter()
        .chain(&local_scores.candidates)
        .map(|c| c.ty)
        .collect();
    types.sort_unstable();
    types.dedup();
    let cands = types
        .into_iter()
        .map(|ty| {
            let wl = local.wl(ty);
            let wg = local.wg(ty, normalized_header);
            let g = global.confidence_for(ty);
            let l = local_scores.confidence_for(ty);
            // Finetuning on a handful of customer examples skews the
            // local head toward the corrected classes, so its opinion
            // only enters the blend when it is *decisive*; otherwise
            // the (Wg-weighted) global model carries the type.
            const LOCAL_TRUST_FLOOR: f64 = 0.7;
            let local_term = if l >= LOCAL_TRUST_FLOOR { l } else { g * wg };
            Candidate {
                ty,
                confidence: (1.0 - wl) * wg * g + wl * local_term,
            }
        })
        .collect();
    StepScores::from_candidates(cands)
}

/// Built-in step 4 (not in the default cascade): the standalone regex
/// bank — shape and numeric-range rules only, with no knowledge base
/// and no labeling functions.
///
/// In the seed pipeline this signal was only reachable inside the
/// lookup step; as its own step it gives deployments a
/// dictionary-free, model-free rule stage they can insert anywhere —
/// e.g. ahead of lookup for pattern-heavy schemas, or as the only
/// value-based step in a minimal low-latency cascade.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegexOnlyStep;

impl AnnotationStep for RegexOnlyStep {
    fn id(&self) -> StepId {
        StepId::REGEX_ONLY
    }

    fn name(&self) -> &str {
        "regex-only"
    }

    fn run(&self, ctx: &StepContext<'_>) -> StepScores {
        let column = ctx.column();
        let bank = ctx.global.lookup.bank();
        let config = ctx.config;
        let wg = |t: TypeId| ctx.local.wg(t, ctx.normalized_header());
        let sample: Vec<String> = column
            .sample(config.lookup_sample)
            .into_iter()
            .map(tu_table::Value::render)
            .collect();
        // Same scoring rules as inside the lookup step — shared via
        // `RegexBank`, so the two sites can never drift apart.
        let mut cands = bank.score_shapes(&sample, &wg);
        cands.extend(bank.score_ranges(&column.numeric_values(), config.range_lf_scale, &wg));
        let mut scores = StepScores::from_candidates(cands);
        scores.candidates.truncate(config.top_k.max(8));
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainingConfig;
    use crate::global::train_global;
    use std::sync::{Arc, OnceLock};
    use tu_corpus::{generate_corpus, CorpusConfig};
    use tu_ontology::{builtin_id, builtin_ontology};

    fn global() -> Arc<GlobalModel> {
        static GLOBAL: OnceLock<Arc<GlobalModel>> = OnceLock::new();
        GLOBAL
            .get_or_init(|| {
                let ontology = builtin_ontology();
                let corpus = generate_corpus(&ontology, &CorpusConfig::database_like(0x57E9, 30));
                Arc::new(train_global(ontology, &corpus, &TrainingConfig::fast()))
            })
            .clone()
    }

    fn ctx_for<'a>(
        table: &'a Table,
        col_idx: usize,
        normalized: &'a [String],
        tentative: &'a [TypeId],
        global: &'a GlobalModel,
        local: &'a LocalModel,
        config: &'a SigmaTyperConfig,
    ) -> StepContext<'a> {
        StepContext {
            table,
            col_idx,
            normalized_headers: normalized,
            tentative,
            best_so_far: 0.0,
            global,
            local,
            config,
            fingerprint: None,
            column_states: &[],
        }
    }

    #[test]
    fn builtin_steps_have_distinct_ids_and_names() {
        let steps: [&dyn AnnotationStep; 4] =
            [&HeaderStep, &LookupStep, &EmbeddingStep, &RegexOnlyStep];
        let mut ids: Vec<StepId> = steps.iter().map(|s| s.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
        assert_eq!(HeaderStep.name(), "header");
        assert_eq!(RegexOnlyStep.name(), "regex-only");
    }

    #[test]
    fn default_skip_honors_cascade_threshold() {
        let g = global();
        let local = LocalModel::new();
        let config = SigmaTyperConfig::default();
        let table = Table::new("t", vec![Column::from_raw("x", &["1"])]).unwrap();
        let normalized = vec!["x".to_owned()];
        let tentative = vec![TypeId::UNKNOWN];
        let mut ctx = ctx_for(&table, 0, &normalized, &tentative, &g, &local, &config);
        assert!(!LookupStep.skip(&ctx));
        assert!(!RegexOnlyStep.skip(&ctx));
        ctx.best_so_far = config.cascade_threshold;
        assert!(LookupStep.skip(&ctx));
        assert!(EmbeddingStep.skip(&ctx));
        assert!(HeaderStep.skip(&ctx));
        assert!(RegexOnlyStep.skip(&ctx));
    }

    #[test]
    fn ablation_flags_gate_builtin_steps() {
        let g = global();
        let local = LocalModel::new();
        let config = SigmaTyperConfig {
            enable_header: false,
            enable_lookup: false,
            enable_embedding: false,
            ..SigmaTyperConfig::default()
        };
        let table = Table::new("t", vec![Column::from_raw("x", &["1"])]).unwrap();
        let normalized = vec!["x".to_owned()];
        let tentative = vec![TypeId::UNKNOWN];
        let ctx = ctx_for(&table, 0, &normalized, &tentative, &g, &local, &config);
        assert!(HeaderStep.skip(&ctx));
        assert!(LookupStep.skip(&ctx));
        assert!(EmbeddingStep.skip(&ctx));
        // RegexOnly has no ablation flag; only the threshold gates it.
        assert!(!RegexOnlyStep.skip(&ctx));
    }

    #[test]
    fn regex_only_step_scores_shapes_and_ranges() {
        let g = global();
        let o = &g.ontology;
        let local = LocalModel::new();
        let config = SigmaTyperConfig::default();
        let table = Table::new(
            "t",
            vec![
                Column::from_raw("a", &["ada@x.com", "bob@y.org", "eve@z.net"]),
                Column::from_raw("b", &["21", "34", "57"]),
                Column::from_raw("c", &["lorem ipsum", "dolor sit", "amet"]),
            ],
        )
        .unwrap();
        let normalized: Vec<String> = table
            .headers()
            .iter()
            .map(|h| tu_text::normalize_header(h))
            .collect();
        let tentative = vec![TypeId::UNKNOWN; 3];
        let email_ctx = ctx_for(&table, 0, &normalized, &tentative, &g, &local, &config);
        let s = RegexOnlyStep.run(&email_ctx);
        assert_eq!(s.best().unwrap().ty, builtin_id(o, "email"));
        assert!(s.best_confidence() > 0.9);
        // Numeric column: range rules fire, scaled below the threshold.
        let num_ctx = ctx_for(&table, 1, &normalized, &tentative, &g, &local, &config);
        let s = RegexOnlyStep.run(&num_ctx);
        assert!(!s.candidates.is_empty());
        assert!(s.best_confidence() <= config.range_lf_scale + 1e-9);
        // Free text matches nothing.
        let text_ctx = ctx_for(&table, 2, &normalized, &tentative, &g, &local, &config);
        assert!(RegexOnlyStep.run(&text_ctx).candidates.is_empty());
    }

    #[test]
    fn cacheable_defaults_and_header_opt_out() {
        // Default admission is "cache everything"; only the header
        // step opts out (memo overhead rivals the step itself).
        assert!(!HeaderStep.cacheable());
        assert!(LookupStep.cacheable());
        assert!(EmbeddingStep.cacheable());
        assert!(RegexOnlyStep.cacheable());
    }

    #[test]
    fn sensitivity_factors_default_to_one_with_embedding_more_tolerant() {
        assert_eq!(HeaderStep.sensitivity_factor(), 1.0);
        assert_eq!(LookupStep.sensitivity_factor(), 1.0);
        assert_eq!(RegexOnlyStep.sensitivity_factor(), 1.0);
        // Aggregate signal: tolerates more movement than value-keyed
        // steps before a re-run pays for itself.
        assert!(EmbeddingStep.sensitivity_factor() > 1.0);
    }

    /// The batch overrides must be bit-identical to mapping `run` over
    /// the same per-column contexts — and invariant to how the batch
    /// is chunked.
    #[test]
    fn run_batch_overrides_match_sequential_run() {
        let g = global();
        let mut local = LocalModel::new();
        let config = SigmaTyperConfig::default();
        let table = Table::new(
            "t",
            vec![
                Column::from_raw("xq_1", &["ada@x.com", "bob@y.org", "eve@z.net"]),
                Column::from_raw("xq_2", &["Oslo", "Lima", "Kyiv"]),
                Column::from_raw("xq_3", &["21", "34", "57"]),
                Column::from_raw("xq_4", &["lorem", "ipsum", "dolor"]),
            ],
        )
        .unwrap();
        let normalized: Vec<String> = table
            .headers()
            .iter()
            .map(|h| tu_text::normalize_header(h))
            .collect();
        let tentative = vec![TypeId::UNKNOWN; 4];
        let states = vec![ColumnState::default(); 4];
        // Engage the finetuned-blend path of the embedding step too.
        local.add_training(vec![(
            Column::from_raw("contact", &["20000001", "20000002"]),
            vec!["name".to_owned()],
            TypeId(2),
        )]);
        local.finetuned = Some(g.embedding.clone());
        let steps: [&dyn AnnotationStep; 3] = [&LookupStep, &EmbeddingStep, &RegexOnlyStep];
        for step in steps {
            let mut ctx = ctx_for(&table, 0, &normalized, &tentative, &g, &local, &config);
            ctx.column_states = &states;
            let sequential: Vec<StepScores> =
                (0..4).map(|ci| step.run(&ctx.for_column(ci))).collect();
            let whole = step.run_batch(&ctx, &[0, 1, 2, 3]);
            assert_eq!(whole, sequential, "{}: whole batch diverged", step.name());
            // Chunked invocation must concatenate to the same bits.
            let mut chunked = step.run_batch(&ctx, &[0, 1]);
            chunked.extend(step.run_batch(&ctx.for_column(2), &[2, 3]));
            assert_eq!(chunked, sequential, "{}: chunking diverged", step.name());
        }
    }

    #[test]
    fn for_column_refocuses_shared_context() {
        let g = global();
        let local = LocalModel::new();
        let config = SigmaTyperConfig::default();
        let table = Table::new(
            "t",
            vec![Column::from_raw("a", &["1"]), Column::from_raw("b", &["2"])],
        )
        .unwrap();
        let normalized = vec!["a".to_owned(), "b".to_owned()];
        let tentative = vec![TypeId::UNKNOWN; 2];
        let states = vec![
            ColumnState {
                best_so_far: 0.9,
                fingerprint: None,
            },
            ColumnState {
                best_so_far: 0.2,
                fingerprint: None,
            },
        ];
        let mut ctx = ctx_for(&table, 0, &normalized, &tentative, &g, &local, &config);
        ctx.column_states = &states;
        let sibling = ctx.for_column(1);
        assert_eq!(sibling.col_idx, 1);
        assert_eq!(sibling.header(), "b");
        assert!((sibling.best_so_far - 0.2).abs() < f64::EPSILON);
        // Out-of-range / empty column_states fall back to the default.
        let bare = ctx_for(&table, 0, &normalized, &tentative, &g, &local, &config);
        assert_eq!(bare.for_column(1).best_so_far, 0.0);
        assert!(bare.for_column(1).fingerprint.is_none());
    }

    #[test]
    fn context_neighbor_accessors_exclude_self() {
        let g = global();
        let local = LocalModel::new();
        let config = SigmaTyperConfig::default();
        let table = Table::new(
            "t",
            vec![
                Column::from_raw("a", &["1"]),
                Column::from_raw("b", &["2"]),
                Column::from_raw("c", &["3"]),
            ],
        )
        .unwrap();
        let normalized = vec!["a".to_owned(), "b".to_owned(), "c".to_owned()];
        let tentative = vec![TypeId(3), TypeId::UNKNOWN, TypeId(5)];
        let ctx = ctx_for(&table, 0, &normalized, &tentative, &g, &local, &config);
        assert_eq!(ctx.header(), "a");
        assert_eq!(ctx.normalized_header(), "a");
        assert_eq!(ctx.neighbor_headers(), vec!["b", "c"]);
        // Own tentative type and unknowns are excluded.
        assert_eq!(ctx.neighbor_types(), vec![TypeId(5)]);
    }
}
