//! The pluggable cascade step API: [`AnnotationStep`] and the built-in
//! step implementations.
//!
//! The paper's cascade (Figure 4) is meant to be customized per
//! deployment — Sigma adds, removes, and tunes steps per customer.
//! Every signal source is therefore an [`AnnotationStep`]: an object
//! with a stable [`StepId`], a display name, a per-column skip
//! predicate (the cascade's early-exit gate), and a scoring function
//! over a [`StepContext`]. The [`Cascade`](crate::cascade::Cascade)
//! runs an ordered list of them; user code registers additional steps
//! through [`SigmaTyper::builder`](crate::system::SigmaTyper::builder).

use crate::cache::ColumnFingerprint;
use crate::config::SigmaTyperConfig;
use crate::global::GlobalModel;
use crate::local::LocalModel;
use crate::prediction::{Candidate, StepId, StepScores};
use tu_ontology::TypeId;
use tu_table::{Column, Table};

/// Everything a step may consult when scoring one column.
///
/// Borrowed per column per step by the cascade; steps must treat it as
/// read-only (inference never mutates the models).
#[derive(Debug, Clone, Copy)]
pub struct StepContext<'a> {
    /// The table being annotated.
    pub table: &'a Table,
    /// Index of the column this step is scoring.
    pub col_idx: usize,
    /// Normalized headers for every column of the table.
    pub normalized_headers: &'a [String],
    /// Tentative per-column types: for each column, the type of the
    /// highest-confidence candidate any *earlier* step produced
    /// (`TypeId::UNKNOWN` where nothing scored yet). Context for
    /// co-occurrence signals.
    pub tentative: &'a [TypeId],
    /// Best confidence any earlier step achieved for *this* column —
    /// the quantity the cascade threshold gates on.
    pub best_so_far: f64,
    /// The shared global model.
    pub global: &'a GlobalModel,
    /// The customer's local model.
    pub local: &'a LocalModel,
    /// The active configuration.
    pub config: &'a SigmaTyperConfig,
    /// This column's cache identity for the current run, when the
    /// owning [`SigmaTyper`](crate::system::SigmaTyper) has a step
    /// cache configured (`None` otherwise). Computed once per column
    /// per table by the cascade; steps may use it to key caches of
    /// their own.
    pub fingerprint: Option<ColumnFingerprint>,
}

impl<'a> StepContext<'a> {
    /// The column being scored.
    ///
    /// # Panics
    /// Panics when `col_idx` is out of range for `table`. Contexts
    /// built by the cascade are always in range; a hand-constructed
    /// context (the fields are public for testing custom steps) must
    /// uphold this itself.
    #[must_use]
    pub fn column(&self) -> &'a Column {
        self.table.column(self.col_idx).expect("column in range")
    }

    /// The raw header of the column being scored.
    ///
    /// # Panics
    /// Panics when `col_idx` is out of range (see [`StepContext::column`]).
    #[must_use]
    pub fn header(&self) -> &'a str {
        self.table.columns()[self.col_idx].name.as_str()
    }

    /// The normalized header of the column being scored.
    ///
    /// # Panics
    /// Panics when `col_idx` is out of range of `normalized_headers`
    /// (see [`StepContext::column`]).
    #[must_use]
    pub fn normalized_header(&self) -> &'a str {
        &self.normalized_headers[self.col_idx]
    }

    /// Tentative types of the *other* columns (unknowns dropped) — the
    /// neighbor context the lookup step feeds its co-occurrence LFs.
    #[must_use]
    pub fn neighbor_types(&self) -> Vec<TypeId> {
        self.tentative
            .iter()
            .enumerate()
            .filter(|(i, t)| *i != self.col_idx && !t.is_unknown())
            .map(|(_, t)| *t)
            .collect()
    }

    /// Raw headers of the *other* columns — the neighbor context the
    /// embedding step encodes.
    #[must_use]
    pub fn neighbor_headers(&self) -> Vec<&'a str> {
        self.table
            .columns()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != self.col_idx)
            .map(|(_, c)| c.name.as_str())
            .collect()
    }
}

/// One pluggable stage of the annotation cascade.
///
/// Implementations must be deterministic and read-only: `run` is called
/// from multiple [`AnnotationService`](crate::service::AnnotationService)
/// worker threads against one shared instance (hence `Send + Sync`).
pub trait AnnotationStep: std::fmt::Debug + Send + Sync {
    /// Stable identity of this step, used in [`ColumnAnnotation::steps_run`],
    /// vote weighting, telemetry, and builder addressing. Custom steps
    /// should allocate theirs via [`StepId::custom`].
    ///
    /// [`ColumnAnnotation::steps_run`]: crate::prediction::ColumnAnnotation::steps_run
    fn id(&self) -> StepId;

    /// Human-readable name, reported in [`StepTiming`](crate::prediction::StepTiming).
    fn name(&self) -> &str;

    /// Per-column skip predicate: `true` means the cascade must not run
    /// this step for the context's column. The default is the paper's
    /// early-exit rule — skip once an earlier step already met the
    /// cascade confidence threshold. Override to add ablation gates or
    /// applicability checks (e.g. numeric-only steps skipping text
    /// columns).
    fn skip(&self, ctx: &StepContext<'_>) -> bool {
        ctx.best_so_far >= ctx.config.cascade_threshold
    }

    /// Score one column. Return [`StepScores::default`] when the step
    /// has no opinion; an executed step is recorded in `steps_run` even
    /// with empty scores (so telemetry distinguishes "ran, found
    /// nothing" from "skipped").
    fn run(&self, ctx: &StepContext<'_>) -> StepScores;
}

/// Built-in step 1: header matching (syntactic + semantic), with the
/// customer's contextual global-weight discount `Wg` applied.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeaderStep;

impl AnnotationStep for HeaderStep {
    fn id(&self) -> StepId {
        StepId::HEADER
    }

    fn name(&self) -> &str {
        "header"
    }

    fn skip(&self, ctx: &StepContext<'_>) -> bool {
        !ctx.config.enable_header || ctx.best_so_far >= ctx.config.cascade_threshold
    }

    fn run(&self, ctx: &StepContext<'_>) -> StepScores {
        let mut scores =
            ctx.global
                .header
                .match_header(ctx.header(), &ctx.global.embedder, ctx.config);
        // Wg: global header knowledge the customer has repeatedly
        // overridden in this header context loses influence (Fig. 2).
        for c in &mut scores.candidates {
            c.confidence *= ctx.local.wg(c.ty, ctx.normalized_header());
        }
        scores
    }
}

/// Built-in step 2: value lookup — labeling functions, knowledge-base
/// dictionaries, and the regex bank, with `Wg` discounting on all
/// globally sourced candidates.
#[derive(Debug, Clone, Copy, Default)]
pub struct LookupStep;

impl AnnotationStep for LookupStep {
    fn id(&self) -> StepId {
        StepId::LOOKUP
    }

    fn name(&self) -> &str {
        "lookup"
    }

    fn skip(&self, ctx: &StepContext<'_>) -> bool {
        !ctx.config.enable_lookup || ctx.best_so_far >= ctx.config.cascade_threshold
    }

    fn run(&self, ctx: &StepContext<'_>) -> StepScores {
        let neighbors = ctx.neighbor_types();
        ctx.global.lookup.lookup_weighted(
            ctx.column(),
            ctx.normalized_header(),
            &neighbors,
            &[&ctx.global.global_lfs, &ctx.local.lfs],
            ctx.config,
            &|t| ctx.local.wg(t, ctx.normalized_header()),
        )
    }
}

/// Built-in step 3: the table-embedding model, blending the finetuned
/// local model (when one exists) with the global one under the
/// adaptation weights `Wl`/`Wg`.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmbeddingStep;

impl AnnotationStep for EmbeddingStep {
    fn id(&self) -> StepId {
        StepId::EMBEDDING
    }

    fn name(&self) -> &str {
        "embedding"
    }

    fn skip(&self, ctx: &StepContext<'_>) -> bool {
        !ctx.config.enable_embedding || ctx.best_so_far >= ctx.config.cascade_threshold
    }

    fn run(&self, ctx: &StepContext<'_>) -> StepScores {
        let neighbors = ctx.neighbor_headers();
        let column = ctx.column();
        let global_scores = ctx.global.embedding.predict(column, &neighbors);
        match &ctx.local.finetuned {
            Some(local_model) => {
                let local_scores = local_model.predict(column, &neighbors);
                blend(
                    &global_scores,
                    &local_scores,
                    ctx.local,
                    ctx.normalized_header(),
                )
            }
            None => global_scores,
        }
    }
}

/// Blend global and local embedding scores with the per-type local
/// weights `Wl` ("the weight of the local model increases over time",
/// Figure 2).
fn blend(
    global: &StepScores,
    local_scores: &StepScores,
    local: &LocalModel,
    normalized_header: &str,
) -> StepScores {
    let mut types: Vec<TypeId> = global
        .candidates
        .iter()
        .chain(&local_scores.candidates)
        .map(|c| c.ty)
        .collect();
    types.sort_unstable();
    types.dedup();
    let cands = types
        .into_iter()
        .map(|ty| {
            let wl = local.wl(ty);
            let wg = local.wg(ty, normalized_header);
            let g = global.confidence_for(ty);
            let l = local_scores.confidence_for(ty);
            // Finetuning on a handful of customer examples skews the
            // local head toward the corrected classes, so its opinion
            // only enters the blend when it is *decisive*; otherwise
            // the (Wg-weighted) global model carries the type.
            const LOCAL_TRUST_FLOOR: f64 = 0.7;
            let local_term = if l >= LOCAL_TRUST_FLOOR { l } else { g * wg };
            Candidate {
                ty,
                confidence: (1.0 - wl) * wg * g + wl * local_term,
            }
        })
        .collect();
    StepScores::from_candidates(cands)
}

/// Built-in step 4 (not in the default cascade): the standalone regex
/// bank — shape and numeric-range rules only, with no knowledge base
/// and no labeling functions.
///
/// In the seed pipeline this signal was only reachable inside the
/// lookup step; as its own step it gives deployments a
/// dictionary-free, model-free rule stage they can insert anywhere —
/// e.g. ahead of lookup for pattern-heavy schemas, or as the only
/// value-based step in a minimal low-latency cascade.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegexOnlyStep;

impl AnnotationStep for RegexOnlyStep {
    fn id(&self) -> StepId {
        StepId::REGEX_ONLY
    }

    fn name(&self) -> &str {
        "regex-only"
    }

    fn run(&self, ctx: &StepContext<'_>) -> StepScores {
        let column = ctx.column();
        let bank = ctx.global.lookup.bank();
        let config = ctx.config;
        let wg = |t: TypeId| ctx.local.wg(t, ctx.normalized_header());
        let sample: Vec<String> = column
            .sample(config.lookup_sample)
            .into_iter()
            .map(tu_table::Value::render)
            .collect();
        // Same scoring rules as inside the lookup step — shared via
        // `RegexBank`, so the two sites can never drift apart.
        let mut cands = bank.score_shapes(&sample, &wg);
        cands.extend(bank.score_ranges(&column.numeric_values(), config.range_lf_scale, &wg));
        let mut scores = StepScores::from_candidates(cands);
        scores.candidates.truncate(config.top_k.max(8));
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainingConfig;
    use crate::global::train_global;
    use std::sync::{Arc, OnceLock};
    use tu_corpus::{generate_corpus, CorpusConfig};
    use tu_ontology::{builtin_id, builtin_ontology};

    fn global() -> Arc<GlobalModel> {
        static GLOBAL: OnceLock<Arc<GlobalModel>> = OnceLock::new();
        GLOBAL
            .get_or_init(|| {
                let ontology = builtin_ontology();
                let corpus = generate_corpus(&ontology, &CorpusConfig::database_like(0x57E9, 30));
                Arc::new(train_global(ontology, &corpus, &TrainingConfig::fast()))
            })
            .clone()
    }

    fn ctx_for<'a>(
        table: &'a Table,
        col_idx: usize,
        normalized: &'a [String],
        tentative: &'a [TypeId],
        global: &'a GlobalModel,
        local: &'a LocalModel,
        config: &'a SigmaTyperConfig,
    ) -> StepContext<'a> {
        StepContext {
            table,
            col_idx,
            normalized_headers: normalized,
            tentative,
            best_so_far: 0.0,
            global,
            local,
            config,
            fingerprint: None,
        }
    }

    #[test]
    fn builtin_steps_have_distinct_ids_and_names() {
        let steps: [&dyn AnnotationStep; 4] =
            [&HeaderStep, &LookupStep, &EmbeddingStep, &RegexOnlyStep];
        let mut ids: Vec<StepId> = steps.iter().map(|s| s.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
        assert_eq!(HeaderStep.name(), "header");
        assert_eq!(RegexOnlyStep.name(), "regex-only");
    }

    #[test]
    fn default_skip_honors_cascade_threshold() {
        let g = global();
        let local = LocalModel::new();
        let config = SigmaTyperConfig::default();
        let table = Table::new("t", vec![Column::from_raw("x", &["1"])]).unwrap();
        let normalized = vec!["x".to_owned()];
        let tentative = vec![TypeId::UNKNOWN];
        let mut ctx = ctx_for(&table, 0, &normalized, &tentative, &g, &local, &config);
        assert!(!LookupStep.skip(&ctx));
        assert!(!RegexOnlyStep.skip(&ctx));
        ctx.best_so_far = config.cascade_threshold;
        assert!(LookupStep.skip(&ctx));
        assert!(EmbeddingStep.skip(&ctx));
        assert!(HeaderStep.skip(&ctx));
        assert!(RegexOnlyStep.skip(&ctx));
    }

    #[test]
    fn ablation_flags_gate_builtin_steps() {
        let g = global();
        let local = LocalModel::new();
        let config = SigmaTyperConfig {
            enable_header: false,
            enable_lookup: false,
            enable_embedding: false,
            ..SigmaTyperConfig::default()
        };
        let table = Table::new("t", vec![Column::from_raw("x", &["1"])]).unwrap();
        let normalized = vec!["x".to_owned()];
        let tentative = vec![TypeId::UNKNOWN];
        let ctx = ctx_for(&table, 0, &normalized, &tentative, &g, &local, &config);
        assert!(HeaderStep.skip(&ctx));
        assert!(LookupStep.skip(&ctx));
        assert!(EmbeddingStep.skip(&ctx));
        // RegexOnly has no ablation flag; only the threshold gates it.
        assert!(!RegexOnlyStep.skip(&ctx));
    }

    #[test]
    fn regex_only_step_scores_shapes_and_ranges() {
        let g = global();
        let o = &g.ontology;
        let local = LocalModel::new();
        let config = SigmaTyperConfig::default();
        let table = Table::new(
            "t",
            vec![
                Column::from_raw("a", &["ada@x.com", "bob@y.org", "eve@z.net"]),
                Column::from_raw("b", &["21", "34", "57"]),
                Column::from_raw("c", &["lorem ipsum", "dolor sit", "amet"]),
            ],
        )
        .unwrap();
        let normalized: Vec<String> = table
            .headers()
            .iter()
            .map(|h| tu_text::normalize_header(h))
            .collect();
        let tentative = vec![TypeId::UNKNOWN; 3];
        let email_ctx = ctx_for(&table, 0, &normalized, &tentative, &g, &local, &config);
        let s = RegexOnlyStep.run(&email_ctx);
        assert_eq!(s.best().unwrap().ty, builtin_id(o, "email"));
        assert!(s.best_confidence() > 0.9);
        // Numeric column: range rules fire, scaled below the threshold.
        let num_ctx = ctx_for(&table, 1, &normalized, &tentative, &g, &local, &config);
        let s = RegexOnlyStep.run(&num_ctx);
        assert!(!s.candidates.is_empty());
        assert!(s.best_confidence() <= config.range_lf_scale + 1e-9);
        // Free text matches nothing.
        let text_ctx = ctx_for(&table, 2, &normalized, &tentative, &g, &local, &config);
        assert!(RegexOnlyStep.run(&text_ctx).candidates.is_empty());
    }

    #[test]
    fn context_neighbor_accessors_exclude_self() {
        let g = global();
        let local = LocalModel::new();
        let config = SigmaTyperConfig::default();
        let table = Table::new(
            "t",
            vec![
                Column::from_raw("a", &["1"]),
                Column::from_raw("b", &["2"]),
                Column::from_raw("c", &["3"]),
            ],
        )
        .unwrap();
        let normalized = vec!["a".to_owned(), "b".to_owned(), "c".to_owned()];
        let tentative = vec![TypeId(3), TypeId::UNKNOWN, TypeId(5)];
        let ctx = ctx_for(&table, 0, &normalized, &tentative, &g, &local, &config);
        assert_eq!(ctx.header(), "a");
        assert_eq!(ctx.normalized_header(), "a");
        assert_eq!(ctx.neighbor_headers(), vec!["b", "c"]);
        // Own tentative type and unknowns are excluded.
        assert_eq!(ctx.neighbor_types(), vec![TypeId(5)]);
    }
}
