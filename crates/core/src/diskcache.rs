//! Persistent on-disk [`StepCache`] tier and durable epoch source.
//!
//! The in-memory [`ShardedLruCache`] dies with its process, but the
//! deployment the paper targets (§4) is a fleet repeatedly crawling
//! slowly changing warehouses: most of the value of memoization is
//! *across* crawler restarts, not within one. This module provides the
//! out-of-process tier:
//!
//! * [`DiskCache`] — an append-only set of segment files of
//!   `CacheKey → StepScores` records keyed by the cross-run-stable
//!   128-bit fingerprints of [`crate::cache`]. Each segment carries a
//!   versioned header and a per-record checksum; a torn or corrupt
//!   tail is truncated at open (cold, never wrong), and a segment
//!   written by a different [`DISK_FORMAT_VERSION`] is discarded
//!   entirely.
//! * [`TieredStepCache`] — the sharded LRU as L1 in front of a
//!   [`DiskCache`] L2, promoting disk hits into memory.
//! * [`DurableEpochSource`] — a small write-ahead epoch file backing
//!   [`EpochSource`]: a restarted [`SigmaTyper`] resumes its
//!   predecessor's epoch (so the disk tier comes up warm), and an
//!   adaptation in one process durably advances the epoch *before*
//!   using it, invalidating the stale entries for every process
//!   sharing the file.
//!
//! # Segment format (version 2)
//!
//! ```text
//! header  := b"SGTC" ‖ version:u32le ‖ reserved:[0u8; 8]      (16 bytes)
//! record  := payload_len:u32le ‖ payload ‖ checksum:[u8; 16]
//! payload := key0:u64le ‖ key1:u64le ‖ epoch:u64le ‖ n:u32le
//!            ‖ n × (ty:u16le ‖ confidence_bits:u64le)
//! ```
//!
//! `checksum` is [`StableHasher::finish128`] over the payload, both
//! lanes little-endian. Scores round-trip by bit pattern
//! (`f64::to_bits`/`from_bits`), preserving the golden-equivalence
//! contract: a disk hit is byte-identical to the insert.
//!
//! Records only append; a key overwritten later simply wins in the
//! in-memory index (rebuilt at open by scanning forward).
//!
//! # Segment rotation
//!
//! Writes land in the **active** segment (`cache.seg`). When it grows
//! past the size limit it is sealed — synced, renamed to
//! `cache-<seq>.seg` — and a fresh active segment starts, so no single
//! file grows without bound and sealed segments become immutable (and
//! safely skippable by backup/rsync once copied). Open discovers the
//! rolled segments, scans them oldest-first, then scans the active
//! segment last, so "latest wins" holds across the whole set. The
//! [`compact`](DiskCache::compact) pass merges *all* segments into one
//! fresh active segment keeping only entries whose recorded epoch is
//! still reachable, reclaiming space from superseded keys and
//! adapted-away epochs, then deletes the rolled files.
//!
//! [`ShardedLruCache`]: crate::cache::ShardedLruCache
//! [`SigmaTyper`]: crate::system::SigmaTyper

use crate::cache::{CacheKey, CacheStats, EpochSource, ShardedLruCache, StableHasher, StepCache};
use crate::prediction::{Candidate, StepScores};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tu_ontology::TypeId;

/// Version tag of the on-disk segment and epoch-file formats, checked
/// at open. This also pins the [`StableHasher`] field set: the hasher
/// is only promised stable for one code version, so any release that
/// changes the hashed fields (or this file layout) must bump the
/// version, and a mismatched artifact is discarded as cold instead of
/// being trusted.
///
/// History: v1 → v2 moved the column length to a trailing position in
/// the column content hash (enabling [`crate::cache::ColumnHashState`]
/// delta chains), changing every fingerprint bit pattern — v1 segments
/// hold keys no v2 process can ever look up, so they restart cold.
pub const DISK_FORMAT_VERSION: u32 = 2;

/// Default size limit of the active segment before it rolls (see the
/// module docs on segment rotation). Deployments with other churn
/// profiles pick their own limit through
/// [`DiskCache::open_with_segment_limit`].
pub const DEFAULT_MAX_SEGMENT_BYTES: u64 = 64 << 20;

const SEGMENT_MAGIC: [u8; 4] = *b"SGTC";
const EPOCH_MAGIC: [u8; 4] = *b"SGTE";
/// Segment header: magic ‖ version ‖ 8 reserved bytes.
const HEADER_LEN: u64 = 16;
/// Fixed payload prefix: key (16) ‖ epoch (8) ‖ candidate count (4).
const PAYLOAD_PREFIX: usize = 28;
/// Bytes per candidate: type id (2) ‖ confidence bits (8).
const CANDIDATE_LEN: usize = 10;
/// Sanity bound rejecting absurd record lengths while scanning a
/// (possibly corrupt) segment.
const MAX_PAYLOAD: usize = 16 << 20;

/// Epoch recorded by epoch-less [`StepCache::insert`] calls: "written
/// outside any known epoch". [`DiskCache::compact`] keeps such entries
/// only when this sentinel is explicitly listed as live.
pub const UNKNOWN_EPOCH: u64 = u64::MAX;

fn checksum(payload: &[u8]) -> [u8; 16] {
    let mut h = StableHasher::new();
    h.write(payload);
    let [a, b] = h.finish128();
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&a.to_le_bytes());
    out[8..].copy_from_slice(&b.to_le_bytes());
    out
}

fn encode_payload(key: CacheKey, epoch: u64, scores: &StepScores) -> Vec<u8> {
    let raw = key.raw();
    let mut buf = Vec::with_capacity(PAYLOAD_PREFIX + CANDIDATE_LEN * scores.candidates.len());
    buf.extend_from_slice(&raw[0].to_le_bytes());
    buf.extend_from_slice(&raw[1].to_le_bytes());
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(&(scores.candidates.len() as u32).to_le_bytes());
    for c in &scores.candidates {
        buf.extend_from_slice(&c.ty.0.to_le_bytes());
        buf.extend_from_slice(&c.confidence.to_bits().to_le_bytes());
    }
    buf
}

/// Decode a verified payload. Scores are rebuilt field-by-field (not
/// re-normalized through `from_candidates`) so the round-trip is
/// bit-identical to the inserted value.
fn decode_payload(payload: &[u8]) -> Option<(CacheKey, u64, StepScores)> {
    if payload.len() < PAYLOAD_PREFIX {
        return None;
    }
    let key0 = u64::from_le_bytes(payload[0..8].try_into().ok()?);
    let key1 = u64::from_le_bytes(payload[8..16].try_into().ok()?);
    let epoch = u64::from_le_bytes(payload[16..24].try_into().ok()?);
    let n = u32::from_le_bytes(payload[24..28].try_into().ok()?) as usize;
    if payload.len() != PAYLOAD_PREFIX + CANDIDATE_LEN * n {
        return None;
    }
    let mut candidates = Vec::with_capacity(n);
    for i in 0..n {
        let at = PAYLOAD_PREFIX + CANDIDATE_LEN * i;
        let ty = u16::from_le_bytes(payload[at..at + 2].try_into().ok()?);
        let bits = u64::from_le_bytes(payload[at + 2..at + 10].try_into().ok()?);
        candidates.push(Candidate {
            ty: TypeId(ty),
            confidence: f64::from_bits(bits),
        });
    }
    Some((
        CacheKey::from_raw([key0, key1]),
        epoch,
        StepScores { candidates },
    ))
}

fn write_header(file: &mut File) -> io::Result<()> {
    let mut header = [0u8; HEADER_LEN as usize];
    header[..4].copy_from_slice(&SEGMENT_MAGIC);
    header[4..8].copy_from_slice(&DISK_FORMAT_VERSION.to_le_bytes());
    file.write_all(&header)
}

#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    /// Which segment holds the record: an index into
    /// [`DiskInner::segments`] (the active segment is always last).
    segment: u32,
    /// Offset of the record's `payload_len` field in its segment.
    offset: u64,
    payload_len: u32,
    epoch: u64,
}

impl IndexEntry {
    fn total_len(self) -> u64 {
        4 + u64::from(self.payload_len) + 16
    }
}

/// One open segment file plus its current path (the path changes when
/// the active segment is sealed and renamed — the handle survives the
/// rename).
#[derive(Debug)]
struct Segment {
    file: File,
    path: PathBuf,
}

#[derive(Debug)]
struct DiskInner {
    /// Rolled segments oldest-first, then the active segment last.
    segments: Vec<Segment>,
    index: HashMap<CacheKey, IndexEntry>,
    /// Append position in the active segment: one past the last
    /// verified record.
    tail: u64,
    /// Sequence number the next sealed segment will be renamed to.
    next_seq: u64,
}

impl DiskInner {
    fn active(&mut self) -> &mut Segment {
        self.segments
            .last_mut()
            .expect("a DiskCache always holds an active segment")
    }
}

/// Scan an open segment, merging its records into the shared key
/// index under segment id `segment`. Returns the verified tail; a
/// tail of 0 means "header invalid — nothing trusted". Scanning stops
/// at the first torn or corrupt record: everything before it is
/// trusted (checksummed), everything after is unreachable anyway
/// since offsets only grow.
fn scan_segment_into(
    file: &mut File,
    segment: u32,
    index: &mut HashMap<CacheKey, IndexEntry>,
) -> io::Result<u64> {
    let len = file.metadata()?.len();
    if len < HEADER_LEN {
        return Ok(0);
    }
    file.seek(SeekFrom::Start(0))?;
    let mut reader = BufReader::new(&mut *file);
    let mut header = [0u8; HEADER_LEN as usize];
    reader.read_exact(&mut header)?;
    if header[..4] != SEGMENT_MAGIC || header[4..8] != DISK_FORMAT_VERSION.to_le_bytes() {
        return Ok(0);
    }
    let mut offset = HEADER_LEN;
    while offset < len {
        let mut len4 = [0u8; 4];
        if reader.read_exact(&mut len4).is_err() {
            break;
        }
        let payload_len = u32::from_le_bytes(len4) as usize;
        let entry = IndexEntry {
            segment,
            offset,
            payload_len: payload_len as u32,
            epoch: 0,
        };
        if !(PAYLOAD_PREFIX..=MAX_PAYLOAD).contains(&payload_len)
            || offset + entry.total_len() > len
        {
            break;
        }
        let mut payload = vec![0u8; payload_len];
        let mut sum = [0u8; 16];
        if reader.read_exact(&mut payload).is_err() || reader.read_exact(&mut sum).is_err() {
            break;
        }
        if sum != checksum(&payload) {
            break;
        }
        let Some((key, epoch, _)) = decode_payload(&payload) else {
            break;
        };
        index.insert(key, IndexEntry { epoch, ..entry });
        offset += entry.total_len();
    }
    Ok(offset)
}

/// Parse the sequence number out of a rolled segment's file name
/// (`cache-<seq>.seg`); `None` for anything else in the directory.
fn rolled_segment_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    name.strip_prefix("cache-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

/// Read and verify one record's scores at a known index entry.
fn read_record(file: &mut File, entry: IndexEntry) -> Option<(CacheKey, u64, StepScores)> {
    file.seek(SeekFrom::Start(entry.offset + 4)).ok()?;
    let mut payload = vec![0u8; entry.payload_len as usize];
    file.read_exact(&mut payload).ok()?;
    let mut sum = [0u8; 16];
    file.read_exact(&mut sum).ok()?;
    if sum != checksum(&payload) {
        return None;
    }
    decode_payload(&payload)
}

/// Take the exclusive advisory lock on `dir/cache.lock`, failing fast
/// (no blocking, no retry) when another [`DiskCache`] already writes
/// this directory. The error names the directory and the remedy so a
/// misconfigured fleet member diagnoses itself from the message alone.
fn acquire_writer_lock(dir: &Path) -> io::Result<File> {
    let lock_path = dir.join("cache.lock");
    let lock = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(&lock_path)?;
    match lock.try_lock() {
        Ok(()) => Ok(lock),
        Err(fs::TryLockError::WouldBlock) => Err(io::Error::new(
            io::ErrorKind::WouldBlock,
            format!(
                "disk cache directory {} is already owned by a live writer \
                 (advisory lock {} is held); point this instance at its own \
                 directory, or wait for the owner to exit — the lock is \
                 released automatically when the owning process dies",
                dir.display(),
                lock_path.display()
            ),
        )),
        Err(fs::TryLockError::Error(e)) => Err(e),
    }
}

/// An append-only persistent [`StepCache`] backend (see the module
/// docs for the segment format and correctness argument).
///
/// All file I/O happens under one mutex — the intended deployment puts
/// a [`ShardedLruCache`] in front (see [`TieredStepCache`]) so the
/// disk is only touched on L1 misses. Reads verify the per-record
/// checksum; any I/O error or corruption is reported as a miss, never
/// as data.
///
/// ```no_run
/// use sigmatyper::diskcache::DiskCache;
/// use sigmatyper::StepCache;
/// let cache = DiskCache::open("/var/cache/sigmatyper/customer-7").unwrap();
/// assert!(cache.is_empty());
/// cache.flush().unwrap();
/// ```
#[derive(Debug)]
pub struct DiskCache {
    /// Path of the active segment (`<dir>/cache.seg`).
    path: PathBuf,
    dir: PathBuf,
    /// Roll the active segment once its tail passes this size.
    max_segment_bytes: u64,
    inner: Mutex<DiskInner>,
    /// Held (never read) for the lifetime of the cache: the advisory
    /// writer lock on `cache.lock` in the segment directory. The OS
    /// releases it when this handle drops — including on a crash, so a
    /// dead writer never wedges the directory.
    _writer_lock: File,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    /// Entries dropped by compaction (the disk tier never evicts
    /// otherwise).
    dropped: AtomicU64,
}

impl DiskCache {
    /// Open (or create) the segment under directory `dir`, scanning it
    /// to rebuild the key index. A segment with a missing, foreign, or
    /// version-mismatched header is restarted empty; a torn tail is
    /// truncated at the last verified record.
    ///
    /// The directory is guarded by an **advisory writer lock**
    /// (`cache.lock`): the segment is a single append stream, so two
    /// live writers would interleave appends and corrupt each other's
    /// records. A second open of the same directory — from another
    /// process of the fleet or another handle in this one — fails fast
    /// with [`io::ErrorKind::WouldBlock`] and a clear message instead.
    /// The lock dies with the handle (even on a crash), so recovery is
    /// automatic.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<DiskCache> {
        Self::open_with_segment_limit(dir, DEFAULT_MAX_SEGMENT_BYTES)
    }

    /// [`open`](DiskCache::open) with an explicit active-segment size
    /// limit instead of [`DEFAULT_MAX_SEGMENT_BYTES`]. A record is
    /// never split: the segment rolls after the append that crosses
    /// the limit, so one oversized record still lands intact.
    pub fn open_with_segment_limit(
        dir: impl AsRef<Path>,
        max_segment_bytes: u64,
    ) -> io::Result<DiskCache> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let writer_lock = acquire_writer_lock(dir)?;
        // Rolled segments first, oldest-first, so later segments (and
        // finally the active one) win duplicate keys.
        let mut rolled: Vec<(u64, PathBuf)> = fs::read_dir(dir)?
            .filter_map(|entry| {
                let path = entry.ok()?.path();
                rolled_segment_seq(&path).map(|seq| (seq, path))
            })
            .collect();
        rolled.sort_unstable_by_key(|(seq, _)| *seq);
        let next_seq = rolled.last().map_or(0, |(seq, _)| seq + 1);
        let mut segments = Vec::with_capacity(rolled.len() + 1);
        let mut index = HashMap::new();
        for (_, path) in rolled {
            let mut file = OpenOptions::new().read(true).open(&path)?;
            // A rolled segment is immutable: a foreign or torn one
            // contributes nothing (cold, never wrong) but stays
            // tracked so compaction reclaims the file.
            scan_segment_into(&mut file, segments.len() as u32, &mut index)?;
            segments.push(Segment { file, path });
        }
        let path = dir.join("cache.seg");
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let tail = scan_segment_into(&mut file, segments.len() as u32, &mut index)?;
        let tail = if tail == 0 {
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            write_header(&mut file)?;
            HEADER_LEN
        } else {
            // Drop torn bytes so the next append starts clean.
            file.set_len(tail)?;
            tail
        };
        segments.push(Segment {
            file,
            path: path.clone(),
        });
        Ok(DiskCache {
            path,
            dir: dir.to_path_buf(),
            max_segment_bytes,
            inner: Mutex::new(DiskInner {
                segments,
                index,
                tail,
                next_seq,
            }),
            _writer_lock: writer_lock,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        })
    }

    /// Path of the active segment file.
    #[must_use]
    pub fn segment_path(&self) -> &Path {
        &self.path
    }

    /// How many segment files currently back the cache (rolled plus
    /// the active one). 1 until the first roll.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.lock().segments.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DiskInner> {
        // Like the LRU shards: plain data, so a poisoned lock at worst
        // loses entries, never integrity (reads re-verify checksums).
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Rewrite all segments into one fresh active segment keeping only
    /// entries whose recorded epoch appears in `live_epochs`, dropping
    /// superseded duplicates and adapted-away epochs, then delete the
    /// rolled segment files. Returns how many index entries were
    /// dropped. The rewrite goes through a temp file and an atomic
    /// rename, so a crash mid-compaction leaves either the old or the
    /// new active segment intact (rolled files are only removed after
    /// the rename lands — a crash between the two at worst leaves
    /// stale rolled files whose keys the merged segment overrides).
    ///
    /// Entries written through epoch-less [`StepCache::insert`] carry
    /// [`UNKNOWN_EPOCH`]; list it in `live_epochs` to keep them.
    pub fn compact(&self, live_epochs: &[u64]) -> io::Result<usize> {
        let mut guard = self.lock();
        let inner = &mut *guard;
        let mut entries: Vec<(CacheKey, IndexEntry)> =
            inner.index.iter().map(|(k, e)| (*k, *e)).collect();
        // Preserve append order — segment-major, then offset — so
        // "latest wins" stays true on rescan.
        entries.sort_by_key(|(_, e)| (e.segment, e.offset));
        let tmp_path = self.path.with_extension("seg.tmp");
        let mut tmp = File::create(&tmp_path)?;
        write_header(&mut tmp)?;
        let mut index = HashMap::new();
        let mut tail = HEADER_LEN;
        let mut dropped = 0usize;
        for (key, entry) in entries {
            if !live_epochs.contains(&entry.epoch) {
                dropped += 1;
                continue;
            }
            let file = &mut inner.segments[entry.segment as usize].file;
            file.seek(SeekFrom::Start(entry.offset))?;
            let mut rec = vec![0u8; entry.total_len() as usize];
            file.read_exact(&mut rec)?;
            let payload = &rec[4..4 + entry.payload_len as usize];
            if rec[4 + entry.payload_len as usize..] != checksum(payload) {
                dropped += 1;
                continue;
            }
            tmp.write_all(&rec)?;
            index.insert(
                key,
                IndexEntry {
                    segment: 0,
                    offset: tail,
                    ..entry
                },
            );
            tail += entry.total_len();
        }
        tmp.sync_data()?;
        fs::rename(&tmp_path, &self.path)?;
        for seg in &inner.segments {
            if seg.path != self.path {
                let _ = fs::remove_file(&seg.path);
            }
        }
        let file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        inner.segments = vec![Segment {
            file,
            path: self.path.clone(),
        }];
        inner.index = index;
        inner.tail = tail;
        self.dropped.fetch_add(dropped as u64, Ordering::Relaxed);
        Ok(dropped)
    }

    /// Seal the active segment — sync, rename to `cache-<seq>.seg` —
    /// and start a fresh one. Best-effort: on failure the oversized
    /// active segment keeps accepting appends (correctness never
    /// depends on rotation).
    fn roll_active(&self, inner: &mut DiskInner) -> io::Result<()> {
        let seq = inner.next_seq;
        let rolled_path = self.dir.join(format!("cache-{seq:06}.seg"));
        let active = inner.active();
        active.file.sync_data()?;
        fs::rename(&active.path, &rolled_path)?;
        // The open handle survives the rename and keeps serving reads.
        active.path = rolled_path;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&self.path)?;
        write_header(&mut file)?;
        inner.segments.push(Segment {
            file,
            path: self.path.clone(),
        });
        inner.tail = HEADER_LEN;
        inner.next_seq = seq + 1;
        Ok(())
    }
}

impl StepCache for DiskCache {
    fn get(&self, key: &CacheKey) -> Option<StepScores> {
        let mut inner = self.lock();
        let entry = inner.index.get(key).copied();
        let found = entry
            .and_then(|entry| read_record(&mut inner.segments[entry.segment as usize].file, entry))
            .and_then(|(k, _, scores)| (k == *key).then_some(scores));
        drop(inner);
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn insert(&self, key: CacheKey, scores: StepScores) {
        self.insert_with_epoch(key, scores, UNKNOWN_EPOCH);
    }

    fn insert_with_epoch(&self, key: CacheKey, scores: StepScores, epoch: u64) {
        let payload = encode_payload(key, epoch, &scores);
        if payload.len() > MAX_PAYLOAD {
            return;
        }
        let mut rec = Vec::with_capacity(4 + payload.len() + 16);
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&payload);
        rec.extend_from_slice(&checksum(&payload));
        let mut inner = self.lock();
        let offset = inner.tail;
        let segment = inner.segments.len() as u32 - 1;
        let active = &mut inner.active().file;
        let mut ok = active.seek(SeekFrom::Start(offset)).is_ok();
        if ok {
            ok = active.write_all(&rec).is_ok();
        }
        if ok {
            inner.index.insert(
                key,
                IndexEntry {
                    segment,
                    offset,
                    payload_len: payload.len() as u32,
                    epoch,
                },
            );
            inner.tail = offset + rec.len() as u64;
            if inner.tail >= self.max_segment_bytes {
                let _ = self.roll_active(&mut inner);
            }
            drop(inner);
            self.inserts.fetch_add(1, Ordering::Relaxed);
        }
        // A failed append leaves `tail` unchanged: the next insert
        // overwrites the torn bytes, and a reopen-time scan truncates
        // them — cold, never wrong.
    }

    fn len(&self) -> usize {
        self.lock().index.len()
    }

    fn clear(&self) {
        let mut inner = self.lock();
        inner.index.clear();
        // Drop the rolled segments (truncating any file that refuses
        // deletion so its records can't be resurrected at reopen),
        // then truncate the active one. Best-effort throughout; on
        // failure the orphaned records are unreachable in this process
        // and rescanned only after reopen.
        let active_path = self.path.clone();
        inner.segments.retain_mut(|seg| {
            if seg.path == active_path {
                return true;
            }
            if fs::remove_file(&seg.path).is_err() {
                let _ = seg.file.set_len(0);
            }
            false
        });
        if inner.active().file.set_len(HEADER_LEN).is_ok() {
            inner.tail = HEADER_LEN;
        }
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.dropped.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    fn flush(&self) -> io::Result<()> {
        self.lock().active().file.sync_data()
    }
}

/// A two-level [`StepCache`]: a [`ShardedLruCache`] L1 serving the hot
/// working set from memory, backed by a [`DiskCache`] L2 that survives
/// the process. Disk hits are promoted into L1; inserts write through
/// to both tiers.
///
/// [`stats`](StepCache::stats) reports the combined view: `hits` from
/// either tier, `misses` only where both tiers missed, `inserts` and
/// `entries` from the authoritative L2, `evictions` from the bounded
/// L1. Per-tier counters remain available through
/// [`l1`](TieredStepCache::l1)/[`l2`](TieredStepCache::l2).
#[derive(Debug)]
pub struct TieredStepCache {
    l1: ShardedLruCache,
    l2: DiskCache,
}

impl TieredStepCache {
    /// Tier an in-memory LRU of `l1_capacity` entries in front of an
    /// open [`DiskCache`].
    #[must_use]
    pub fn new(l1_capacity: usize, l2: DiskCache) -> Self {
        TieredStepCache {
            l1: ShardedLruCache::new(l1_capacity),
            l2,
        }
    }

    /// Open (or create) the disk tier under `dir` with an L1 of
    /// `l1_capacity` entries.
    pub fn open(dir: impl AsRef<Path>, l1_capacity: usize) -> io::Result<Self> {
        DiskCache::open(dir).map(|l2| TieredStepCache::new(l1_capacity, l2))
    }

    /// The in-memory tier.
    #[must_use]
    pub fn l1(&self) -> &ShardedLruCache {
        &self.l1
    }

    /// The persistent tier.
    #[must_use]
    pub fn l2(&self) -> &DiskCache {
        &self.l2
    }

    /// Compact the disk tier (see [`DiskCache::compact`]). The L1 is
    /// untouched — its stale entries are unreachable by fingerprint
    /// and age out on their own.
    pub fn compact(&self, live_epochs: &[u64]) -> io::Result<usize> {
        self.l2.compact(live_epochs)
    }
}

impl StepCache for TieredStepCache {
    fn get(&self, key: &CacheKey) -> Option<StepScores> {
        if let Some(scores) = self.l1.get(key) {
            return Some(scores);
        }
        let scores = self.l2.get(key)?;
        self.l1.insert(*key, scores.clone());
        Some(scores)
    }

    fn insert(&self, key: CacheKey, scores: StepScores) {
        self.l1.insert(key, scores.clone());
        self.l2.insert(key, scores);
    }

    fn insert_with_epoch(&self, key: CacheKey, scores: StepScores, epoch: u64) {
        self.l1.insert(key, scores.clone());
        self.l2.insert_with_epoch(key, scores, epoch);
    }

    fn len(&self) -> usize {
        self.l2.len()
    }

    fn clear(&self) {
        self.l1.clear();
        self.l2.clear();
    }

    fn stats(&self) -> CacheStats {
        let l1 = self.l1.stats();
        let l2 = self.l2.stats();
        CacheStats {
            hits: l1.hits + l2.hits,
            misses: l2.misses,
            inserts: l2.inserts,
            evictions: l1.evictions,
            entries: l2.entries,
        }
    }

    fn resize(&self, capacity: usize) -> bool {
        self.l1.resize(capacity)
    }

    fn flush(&self) -> io::Result<()> {
        self.l2.flush()
    }
}

fn read_epoch_file(path: &Path) -> Option<u64> {
    let bytes = fs::read(path).ok()?;
    if bytes.len() != 32
        || bytes[..4] != EPOCH_MAGIC
        || bytes[4..8] != DISK_FORMAT_VERSION.to_le_bytes()
        || bytes[16..32] != checksum(&bytes[..16])
    {
        return None;
    }
    Some(u64::from_le_bytes(bytes[8..16].try_into().ok()?))
}

fn write_epoch_file(path: &Path, epoch: u64) -> io::Result<()> {
    let mut buf = Vec::with_capacity(32);
    buf.extend_from_slice(&EPOCH_MAGIC);
    buf.extend_from_slice(&DISK_FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&epoch.to_le_bytes());
    let sum = checksum(&buf);
    buf.extend_from_slice(&sum);
    let tmp = path.with_extension("tmp");
    let mut file = File::create(&tmp)?;
    file.write_all(&buf)?;
    file.sync_data()?;
    fs::rename(&tmp, path)
}

/// A durable per-customer [`EpochSource`] backed by a 32-byte
/// write-ahead file (magic ‖ version ‖ epoch ‖ checksum).
///
/// * A fresh file seeds the epoch from process-unique entropy and
///   persists it before first use, so two customers pointed at
///   different files (or the same customer racing its own first
///   start) never collide with an in-memory counter epoch.
/// * [`current`](EpochSource::current) re-reads the file on every
///   call: an advance performed by *another process* sharing the file
///   is observed at the next annotation, invalidating that process's
///   view of the shared cache. The file is one sector, so this is one
///   cheap read compared to a cascade run.
/// * [`advance`](EpochSource::advance) persists the new epoch
///   (temp-file + fsync + atomic rename) *before* returning it —
///   write-ahead, so no process can cache under an epoch that a crash
///   would resurrect.
///
/// A corrupt or unreadable file degrades safely: `current` falls back
/// to the last known value, and a corrupt file at open reseeds from
/// entropy (cold cache, never a stale hit).
#[derive(Debug)]
pub struct DurableEpochSource {
    path: PathBuf,
    last: AtomicU64,
}

impl DurableEpochSource {
    /// Open (or create) the epoch file at `path`. An existing valid
    /// file resumes its stored epoch — the point of durability: a
    /// restarted process keeps reaching its predecessor's cached
    /// entries. A missing or corrupt file seeds a fresh entropy epoch
    /// and persists it before returning.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let epoch = match read_epoch_file(&path) {
            Some(stored) => stored,
            None => {
                let seed = crate::system::entropy_epoch_seed();
                write_epoch_file(&path, seed)?;
                seed
            }
        };
        Ok(DurableEpochSource {
            path,
            last: AtomicU64::new(epoch),
        })
    }

    /// Path of the backing epoch file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl EpochSource for DurableEpochSource {
    fn current(&self) -> u64 {
        match read_epoch_file(&self.path) {
            Some(stored) => {
                self.last.store(stored, Ordering::Relaxed);
                stored
            }
            None => self.last.load(Ordering::Relaxed),
        }
    }

    fn advance(&self) -> u64 {
        let next = self.current().wrapping_add(1);
        // Write-ahead: durable before use. If the write fails the
        // advance still happens in memory, so local invalidation is
        // never lost — only cross-process visibility degrades.
        let _ = write_epoch_file(&self.path, next);
        self.last.store(next, Ordering::Relaxed);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{SystemTime, UNIX_EPOCH};

    fn scores(conf: f64, n: usize) -> StepScores {
        StepScores {
            candidates: (0..n)
                .map(|i| Candidate {
                    ty: TypeId(i as u16),
                    confidence: conf / (i + 1) as f64,
                })
                .collect(),
        }
    }

    fn key(n: u64) -> CacheKey {
        CacheKey::from_raw([
            crate::cache::avalanche(n),
            crate::cache::avalanche(n ^ 0x5bd1_e995),
        ])
    }

    /// A fresh per-test scratch directory (no tempfile crate in the
    /// workspace); removed by `Scratch::drop`.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            let nanos = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0, |d| d.as_nanos());
            let dir = std::env::temp_dir().join(format!(
                "sigmatyper-diskcache-{tag}-{}-{nanos}",
                std::process::id()
            ));
            fs::create_dir_all(&dir).unwrap();
            Scratch(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn roundtrip_is_bit_identical_and_survives_reopen() {
        let dir = Scratch::new("roundtrip");
        let written = scores(0.875, 3);
        {
            let cache = DiskCache::open(dir.path()).unwrap();
            assert!(cache.is_empty());
            assert_eq!(cache.get(&key(1)), None);
            cache.insert_with_epoch(key(1), written.clone(), 42);
            cache.insert_with_epoch(key(2), scores(0.5, 0), 42);
            assert_eq!(cache.len(), 2);
            assert_eq!(cache.get(&key(1)).unwrap(), written);
            cache.flush().unwrap();
            let s = cache.stats();
            assert_eq!((s.hits, s.misses, s.inserts, s.entries), (1, 1, 2, 2));
        }
        // A fresh handle (simulated restart) rescans the segment.
        let cache = DiskCache::open(dir.path()).unwrap();
        assert_eq!(cache.len(), 2);
        let read_back = cache.get(&key(1)).unwrap();
        assert_eq!(read_back, written);
        for (a, b) in read_back.candidates.iter().zip(&written.candidates) {
            assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
        }
        assert_eq!(cache.get(&key(2)).unwrap().candidates.len(), 0);
    }

    #[test]
    fn second_writer_on_one_directory_fails_fast_until_the_first_drops() {
        let dir = Scratch::new("lock");
        let first = DiskCache::open(dir.path()).unwrap();
        // A second open of the same directory must refuse immediately —
        // two live writers would interleave appends into one segment.
        let second = DiskCache::open(dir.path());
        let err = second.expect_err("advisory lock must refuse a second writer");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        let msg = err.to_string();
        assert!(
            msg.contains("already owned by a live writer") && msg.contains("cache.lock"),
            "error must name the conflict and the lock file: {msg}"
        );
        // The tiered wrapper goes through the same guard.
        assert!(TieredStepCache::open(dir.path(), 64).is_err());
        // A *different* directory is unaffected.
        let other = Scratch::new("lock-other");
        drop(DiskCache::open(other.path()).unwrap());
        // Dropping the owner releases the lock; reopen succeeds and the
        // data written by the first owner is still served.
        first.insert_with_epoch(key(9), scores(0.5, 1), 3);
        drop(first);
        let reopened = DiskCache::open(dir.path()).unwrap();
        assert_eq!(reopened.get(&key(9)).unwrap(), scores(0.5, 1));
    }

    #[test]
    fn latest_insert_wins_within_and_across_opens() {
        let dir = Scratch::new("latest");
        {
            let cache = DiskCache::open(dir.path()).unwrap();
            cache.insert_with_epoch(key(1), scores(0.25, 1), 7);
            cache.insert_with_epoch(key(1), scores(0.75, 1), 7);
            assert_eq!(cache.len(), 1);
            assert_eq!(cache.get(&key(1)).unwrap(), scores(0.75, 1));
        }
        let cache = DiskCache::open(dir.path()).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key(1)).unwrap(), scores(0.75, 1));
    }

    #[test]
    fn truncated_tail_is_cold_never_garbage() {
        let dir = Scratch::new("torn");
        let seg = {
            let cache = DiskCache::open(dir.path()).unwrap();
            for n in 0..4 {
                cache.insert_with_epoch(key(n), scores(0.5, 2), 1);
            }
            cache.flush().unwrap();
            cache.segment_path().to_path_buf()
        };
        let full = fs::metadata(&seg).unwrap().len();
        // Chop the file at every byte boundary of the last record and
        // a few interior points: reopen must never panic, and every
        // surviving hit must verify.
        for cut in [full - 1, full - 10, full - 30, HEADER_LEN + 3, 5, 0] {
            let f = OpenOptions::new().write(true).open(&seg).unwrap();
            f.set_len(cut).unwrap();
            drop(f);
            let cache = DiskCache::open(dir.path()).unwrap();
            assert!(cache.len() <= 4);
            for n in 0..4 {
                if let Some(s) = cache.get(&key(n)) {
                    assert_eq!(s, scores(0.5, 2), "a surviving entry must be exact");
                }
            }
        }
        // Fully truncated: reopened empty and writable again.
        let cache = DiskCache::open(dir.path()).unwrap();
        assert!(cache.is_empty());
        cache.insert_with_epoch(key(9), scores(0.9, 1), 2);
        assert_eq!(cache.get(&key(9)).unwrap(), scores(0.9, 1));
    }

    #[test]
    fn corrupt_interior_byte_invalidates_reachable_suffix_only() {
        let dir = Scratch::new("flip");
        let seg = {
            let cache = DiskCache::open(dir.path()).unwrap();
            for n in 0..3 {
                cache.insert_with_epoch(key(n), scores(0.5, 1), 1);
            }
            cache.flush().unwrap();
            cache.segment_path().to_path_buf()
        };
        // Flip one payload byte in the middle record.
        let mut bytes = fs::read(&seg).unwrap();
        let record_len = 4 + PAYLOAD_PREFIX + CANDIDATE_LEN + 16;
        let target = HEADER_LEN as usize + record_len + 8;
        bytes[target] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        let cache = DiskCache::open(dir.path()).unwrap();
        // Record 0 still verifies; 1 and 2 are behind the corruption.
        assert_eq!(cache.get(&key(0)).unwrap(), scores(0.5, 1));
        assert_eq!(cache.get(&key(1)), None);
        assert_eq!(cache.get(&key(2)), None);
    }

    #[test]
    fn version_or_magic_mismatch_restarts_segment() {
        let dir = Scratch::new("version");
        let seg = {
            let cache = DiskCache::open(dir.path()).unwrap();
            cache.insert_with_epoch(key(1), scores(0.5, 1), 1);
            cache.flush().unwrap();
            cache.segment_path().to_path_buf()
        };
        for patch in [4usize, 0] {
            let mut bytes = fs::read(&seg).unwrap();
            bytes[patch] = bytes[patch].wrapping_add(1);
            fs::write(&seg, &bytes).unwrap();
            let cache = DiskCache::open(dir.path()).unwrap();
            assert!(cache.is_empty(), "foreign segment must come up cold");
            // …and the segment was rewritten valid.
            cache.insert_with_epoch(key(1), scores(0.5, 1), 1);
            cache.flush().unwrap();
        }
    }

    #[test]
    fn compaction_drops_unreachable_epochs_and_duplicates() {
        let dir = Scratch::new("compact");
        let cache = DiskCache::open(dir.path()).unwrap();
        cache.insert_with_epoch(key(1), scores(0.1, 1), 1);
        cache.insert_with_epoch(key(2), scores(0.2, 1), 1);
        // Adaptation: epoch 2 supersedes key(1)'s column.
        cache.insert_with_epoch(key(3), scores(0.3, 1), 2);
        cache.insert(key(4), scores(0.4, 1)); // UNKNOWN_EPOCH
        let before = fs::metadata(cache.segment_path()).unwrap().len();
        let dropped = cache.compact(&[2]).unwrap();
        assert_eq!(dropped, 3);
        assert_eq!(cache.len(), 1);
        assert!(fs::metadata(cache.segment_path()).unwrap().len() < before);
        assert_eq!(cache.get(&key(3)).unwrap(), scores(0.3, 1));
        assert_eq!(cache.get(&key(1)), None);
        assert_eq!(cache.stats().evictions, 3);
        // The compacted segment is append-consistent: more inserts and
        // a reopen both work.
        cache.insert_with_epoch(key(5), scores(0.5, 1), 2);
        cache.flush().unwrap();
        drop(cache);
        let cache = DiskCache::open(dir.path()).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key(5)).unwrap(), scores(0.5, 1));
        // Keeping UNKNOWN_EPOCH explicitly retains epoch-less entries.
        cache.insert(key(6), scores(0.6, 1));
        assert_eq!(cache.compact(&[2, UNKNOWN_EPOCH]).unwrap(), 0);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn rotation_rolls_at_threshold_and_latest_wins_across_segments() {
        let dir = Scratch::new("rotate");
        {
            // Tiny limit: every record crosses it, so every insert
            // seals the active segment.
            let cache = DiskCache::open_with_segment_limit(dir.path(), 64).unwrap();
            assert_eq!(cache.segment_count(), 1);
            for n in 0..5 {
                cache.insert_with_epoch(key(n), scores(0.5, 2), 1);
            }
            assert!(cache.segment_count() > 1, "active segment must roll");
            // Records sealed into rolled segments stay readable.
            for n in 0..5 {
                assert_eq!(cache.get(&key(n)).unwrap(), scores(0.5, 2));
            }
            // Overwrite a key that lives in a rolled segment: the
            // fresher record in a later segment must win.
            cache.insert_with_epoch(key(0), scores(0.9, 1), 1);
            assert_eq!(cache.get(&key(0)).unwrap(), scores(0.9, 1));
            assert_eq!(cache.len(), 5);
            cache.flush().unwrap();
        }
        // Reopen (default limit) discovers the rolled segments and
        // merges them oldest-first — latest still wins.
        let cache = DiskCache::open(dir.path()).unwrap();
        assert!(cache.segment_count() > 1);
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.get(&key(0)).unwrap(), scores(0.9, 1));
        for n in 1..5 {
            assert_eq!(cache.get(&key(n)).unwrap(), scores(0.5, 2));
        }
    }

    #[test]
    fn compaction_merges_all_segments_into_one_and_deletes_rolled_files() {
        let dir = Scratch::new("rotate-compact");
        let cache = DiskCache::open_with_segment_limit(dir.path(), 64).unwrap();
        for n in 0..4 {
            cache.insert_with_epoch(key(n), scores(0.5, 1), 1);
        }
        cache.insert_with_epoch(key(9), scores(0.9, 1), 2);
        assert!(cache.segment_count() > 1);
        let dropped = cache.compact(&[1]).unwrap();
        assert_eq!(dropped, 1, "only the epoch-2 entry is unreachable");
        assert_eq!(cache.segment_count(), 1, "compaction merges to one segment");
        assert_eq!(cache.len(), 4);
        for n in 0..4 {
            assert_eq!(cache.get(&key(n)).unwrap(), scores(0.5, 1));
        }
        assert_eq!(cache.get(&key(9)), None);
        // The rolled files are gone from disk: only the active
        // segment, the lock, and the temp-free directory remain.
        let seg_files: Vec<_> = fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| {
                let name = e.unwrap().file_name().into_string().unwrap();
                name.ends_with(".seg").then_some(name)
            })
            .collect();
        assert_eq!(seg_files, vec!["cache.seg".to_string()]);
        // Post-compaction appends and a reopen both work; rotation
        // continues from a fresh sequence space without collisions.
        for n in 10..14 {
            cache.insert_with_epoch(key(n), scores(0.4, 1), 1);
        }
        assert!(cache.segment_count() > 1);
        cache.flush().unwrap();
        drop(cache);
        let cache = DiskCache::open(dir.path()).unwrap();
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.get(&key(12)).unwrap(), scores(0.4, 1));
    }

    #[test]
    fn clear_removes_rolled_segments_too() {
        let dir = Scratch::new("rotate-clear");
        let cache = DiskCache::open_with_segment_limit(dir.path(), 64).unwrap();
        for n in 0..4 {
            cache.insert_with_epoch(key(n), scores(0.5, 1), 1);
        }
        assert!(cache.segment_count() > 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.segment_count(), 1);
        cache.insert_with_epoch(key(7), scores(0.7, 1), 1);
        cache.flush().unwrap();
        drop(cache);
        let cache = DiskCache::open(dir.path()).unwrap();
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key(0)).is_none(), "cleared entries stay gone");
        assert_eq!(cache.get(&key(7)).unwrap(), scores(0.7, 1));
    }

    #[test]
    fn clear_empties_disk_and_reopen_sees_nothing() {
        let dir = Scratch::new("clear");
        let cache = DiskCache::open(dir.path()).unwrap();
        cache.insert_with_epoch(key(1), scores(0.5, 1), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.get(&key(1)), None);
        cache.insert_with_epoch(key(2), scores(0.5, 1), 1);
        cache.flush().unwrap();
        drop(cache);
        let cache = DiskCache::open(dir.path()).unwrap();
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.get(&key(2)).is_some());
    }

    #[test]
    fn tiered_cache_promotes_and_reports_combined_stats() {
        let dir = Scratch::new("tiered");
        let tiered = TieredStepCache::open(dir.path(), 64).unwrap();
        tiered.insert_with_epoch(key(1), scores(0.5, 1), 1);
        // L1 hit.
        assert!(tiered.get(&key(1)).is_some());
        assert_eq!(tiered.l1().stats().hits, 1);
        assert_eq!(tiered.l2().stats().hits, 0);
        // Simulate a restart: L1 cold, L2 warm, hit promotes. (A real
        // drop, not a shadow — the dying handle must release the
        // directory's writer lock for the reopen to be admitted.)
        drop(tiered);
        let tiered = TieredStepCache::open(dir.path(), 64).unwrap();
        assert_eq!(tiered.len(), 1);
        assert!(tiered.get(&key(1)).is_some(), "disk hit");
        assert_eq!(tiered.l2().stats().hits, 1);
        assert!(tiered.get(&key(1)).is_some(), "promoted into L1");
        assert_eq!(tiered.l2().stats().hits, 1, "second hit served by L1");
        let s = tiered.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 0);
        assert_eq!(s.entries, 1);
        // A total miss counts once.
        assert!(tiered.get(&key(9)).is_none());
        assert_eq!(tiered.stats().misses, 1);
        // Resize reaches the L1; flush reaches the L2.
        assert!(tiered.resize(8));
        tiered.flush().unwrap();
        tiered.clear();
        assert!(tiered.is_empty());
    }

    #[test]
    fn durable_epoch_source_resumes_advances_and_survives_corruption() {
        let dir = Scratch::new("epoch");
        let path = dir.path().join("epoch");
        let first = DurableEpochSource::open(&path).unwrap();
        let e0 = first.current();
        // Resuming reads the same epoch back (durable across restart).
        let resumed = DurableEpochSource::open(&path).unwrap();
        assert_eq!(resumed.current(), e0);
        // Advance is write-ahead: a third handle sees it immediately.
        let e1 = resumed.advance();
        assert_eq!(e1, e0.wrapping_add(1));
        assert_eq!(first.current(), e1, "cross-handle visibility");
        assert_eq!(DurableEpochSource::open(&path).unwrap().current(), e1);
        // Corrupt file ⇒ reopen reseeds fresh instead of trusting it.
        let mut bytes = fs::read(&path).unwrap();
        bytes[20] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let reseeded = DurableEpochSource::open(&path).unwrap();
        assert_ne!(reseeded.current(), e1);
        // A live handle with a corrupt file falls back to last known.
        let held = DurableEpochSource::open(&path).unwrap();
        let known = held.current();
        fs::write(&path, b"junk").unwrap();
        assert_eq!(held.current(), known);
    }

    #[test]
    fn distinct_paths_seed_distinct_epochs() {
        let dir = Scratch::new("seeds");
        let a = DurableEpochSource::open(dir.path().join("a")).unwrap();
        let b = DurableEpochSource::open(dir.path().join("b")).unwrap();
        assert_ne!(a.current(), b.current());
    }
}
