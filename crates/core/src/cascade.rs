//! The [`Cascade`]: an ordered, pluggable pipeline of
//! [`AnnotationStep`]s with the paper's confidence-threshold early-exit
//! logic and per-step vote-weight overrides.
//!
//! "Each step in the pipeline is executed only if a preset confidence
//! threshold c is not met by the prior step. The steps are executed in
//! order of inference time." (§4.3) — the order is whatever the builder
//! configured, and the steps can be any mix of built-ins and
//! user-registered implementations.

use crate::cache::CacheContext;
use crate::config::SigmaTyperConfig;
use crate::executor::CascadeExecutor;
use crate::global::GlobalModel;
use crate::local::LocalModel;
use crate::prediction::{StepId, StepScores, StepTiming};
use crate::step::{AnnotationStep, EmbeddingStep, HeaderStep, LookupStep};
use std::collections::HashMap;
use std::sync::Arc;
use tu_table::Table;

/// An ordered list of annotation steps plus per-step weight overrides.
///
/// Steps are held behind `Arc` so a customer's [`SigmaTyper`] stays
/// cheaply cloneable (the batch service clones it per configuration,
/// and step implementations are stateless or read-only at inference
/// time).
///
/// [`SigmaTyper`]: crate::system::SigmaTyper
#[derive(Debug, Clone)]
pub struct Cascade {
    steps: Vec<Arc<dyn AnnotationStep>>,
    weight_overrides: HashMap<StepId, f64>,
}

/// What the cascade produced for one table: per-column `(step, scores)`
/// traces in execution order, plus one timing record per configured
/// step.
pub type CascadeTrace = (Vec<Vec<(StepId, StepScores)>>, Vec<StepTiming>);

impl Default for Cascade {
    fn default() -> Self {
        Cascade::standard()
    }
}

impl Cascade {
    /// The paper's standard three-step cascade: header → lookup →
    /// embedding.
    #[must_use]
    pub fn standard() -> Self {
        let mut c = Cascade::empty();
        c.push(HeaderStep);
        c.push(LookupStep);
        c.push(EmbeddingStep);
        c
    }

    /// A cascade with no steps (annotating with it abstains on every
    /// column); the starting point for fully custom pipelines.
    #[must_use]
    pub fn empty() -> Self {
        Cascade {
            steps: Vec::new(),
            weight_overrides: HashMap::new(),
        }
    }

    /// Number of configured steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Is the cascade empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Step ids in execution order.
    #[must_use]
    pub fn step_ids(&self) -> Vec<StepId> {
        self.steps.iter().map(|s| s.id()).collect()
    }

    /// The configured steps, in execution order — what the
    /// [`CascadeExecutor`] walks.
    #[must_use]
    pub fn steps(&self) -> &[Arc<dyn AnnotationStep>] {
        &self.steps
    }

    /// Is a step with this id configured?
    #[must_use]
    pub fn contains(&self, id: StepId) -> bool {
        self.steps.iter().any(|s| s.id() == id)
    }

    /// Append a step at the end of the cascade.
    ///
    /// # Panics
    /// Panics when a step with the same id is already configured — two
    /// steps must never share an id (telemetry, weights, and
    /// `steps_run` would become ambiguous).
    pub fn push(&mut self, step: impl AnnotationStep + 'static) {
        self.insert(self.steps.len(), step);
    }

    /// Insert a step at `index` (0 = runs first).
    ///
    /// # Panics
    /// Panics when `index > len()` or when a step with the same id is
    /// already configured.
    pub fn insert(&mut self, index: usize, step: impl AnnotationStep + 'static) {
        assert!(
            !self.contains(step.id()),
            "cascade already has a step with id {:?}",
            step.id()
        );
        self.steps.insert(index, Arc::new(step));
    }

    /// Remove the step with this id; returns whether one was removed.
    pub fn remove(&mut self, id: StepId) -> bool {
        let before = self.steps.len();
        self.steps.retain(|s| s.id() != id);
        self.weight_overrides.remove(&id);
        self.steps.len() != before
    }

    /// Reorder the cascade: steps listed in `order` run first, in that
    /// order; configured steps not listed keep their relative order and
    /// run after. Ids in `order` that are not configured are ignored.
    pub fn reorder(&mut self, order: &[StepId]) {
        let mut reordered: Vec<Arc<dyn AnnotationStep>> = Vec::with_capacity(self.steps.len());
        for id in order {
            if let Some(pos) = self.steps.iter().position(|s| s.id() == *id) {
                reordered.push(self.steps.remove(pos));
            }
        }
        reordered.append(&mut self.steps);
        self.steps = reordered;
    }

    /// Cost-aware step ordering (the paper's "executed in order of
    /// inference time", §4.3, measured instead of assumed): re-sort
    /// the steps the [`CostModel`](crate::cost::CostModel) has
    /// estimates for by ascending
    /// [`cost_per_yield`](crate::cost::StepCostEstimate::cost_per_yield),
    /// cheapest first. Steps without estimates keep their exact
    /// positions — only the ranked steps permute among the slots they
    /// already occupied, so an unobserved custom step is never flung
    /// to either end of the cascade. Ties keep the current relative
    /// order (the sort is stable), so repeated calls are idempotent.
    ///
    /// Returns `true` when the order actually changed. Reordering
    /// changes which steps run *first* — and therefore, through the
    /// early-exit gate, which steps run at all — but for columns no
    /// step resolves (no early exit) the soft majority vote is
    /// order-independent, which the golden suite pins down.
    ///
    /// Callers going through
    /// [`SigmaTyper::cascade_mut`](crate::system::SigmaTyper::cascade_mut)
    /// get the cache-epoch bump for free; the step order is part of
    /// every column fingerprint, so stale cached scores cannot
    /// survive a reorder either way.
    pub fn reorder_by_cost(&mut self, model: &crate::cost::CostModel) -> bool {
        let mut ranked: Vec<(usize, f64)> = self
            .steps
            .iter()
            .enumerate()
            .filter_map(|(i, s)| model.estimate(s.id()).map(|e| (i, e.cost_per_yield())))
            .collect();
        if ranked.len() < 2 {
            return false;
        }
        let slots: Vec<usize> = ranked.iter().map(|(i, _)| *i).collect();
        ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut changed = false;
        let mut reordered = self.steps.clone();
        for (slot, (from, _)) in slots.iter().zip(&ranked) {
            reordered[*slot] = self.steps[*from].clone();
            changed |= slot != from;
        }
        self.steps = reordered;
        changed
    }

    /// Override the vote weight of one step (by default a step weighs
    /// [`SigmaTyperConfig::step_weight`]).
    pub fn set_weight(&mut self, id: StepId, weight: f64) {
        self.weight_overrides.insert(id, weight);
    }

    /// Effective vote weight of a step: the override when one is set,
    /// else the config default.
    #[must_use]
    pub fn weight(&self, id: StepId, config: &SigmaTyperConfig) -> f64 {
        self.weight_overrides
            .get(&id)
            .copied()
            .unwrap_or_else(|| config.step_weight(id))
    }

    /// Run every configured step over every column of `table`, honoring
    /// each step's skip predicate (by default the cascade-threshold
    /// early exit).
    ///
    /// Returns the per-column `(step, scores)` traces in execution
    /// order plus per-step timings. Aggregation (vote, specificity
    /// tie-break, τ) happens in [`SigmaTyper::annotate`].
    ///
    /// [`SigmaTyper::annotate`]: crate::system::SigmaTyper::annotate
    #[must_use]
    pub fn run(
        &self,
        table: &Table,
        global: &GlobalModel,
        local: &LocalModel,
        config: &SigmaTyperConfig,
    ) -> CascadeTrace {
        self.run_cached(table, global, local, config, None)
    }

    /// [`Cascade::run`] with an optional step cache: before running a
    /// [`cacheable`](AnnotationStep::cacheable) step on a column, the
    /// cache is consulted under the column's fingerprint (see
    /// [`crate::cache`]); a hit pushes the stored scores into the
    /// trace exactly as a run would, a miss runs the step and inserts
    /// the result. Per-step hit/miss/insert counts are reported in the
    /// [`StepTiming`] records; cache hits do not count toward
    /// [`StepTiming::columns`].
    ///
    /// Cached and uncached runs are bit-identical: a cached score was
    /// produced by the same deterministic step under a context with
    /// the same fingerprint, and the skip predicates and tentative
    /// types downstream of it see identical inputs either way.
    ///
    /// Execution — the frontier loop, cache consults, and the
    /// (config-governed) column-parallel path — lives in
    /// [`CascadeExecutor`]; this method builds one from `config` and
    /// delegates. Callers that manage their own worker budgets (the
    /// batch service) construct the executor directly.
    #[must_use]
    pub fn run_cached(
        &self,
        table: &Table,
        global: &GlobalModel,
        local: &LocalModel,
        config: &SigmaTyperConfig,
        cache: Option<CacheContext<'_>>,
    ) -> CascadeTrace {
        CascadeExecutor::from_config(config).run(self, table, global, local, config, cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::RegexOnlyStep;

    #[test]
    fn standard_cascade_order() {
        let c = Cascade::standard();
        assert_eq!(
            c.step_ids(),
            vec![StepId::HEADER, StepId::LOOKUP, StepId::EMBEDDING]
        );
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!(c.contains(StepId::LOOKUP));
        assert!(!c.contains(StepId::REGEX_ONLY));
    }

    #[test]
    fn insert_remove_reorder() {
        let mut c = Cascade::standard();
        c.insert(1, RegexOnlyStep);
        assert_eq!(
            c.step_ids(),
            vec![
                StepId::HEADER,
                StepId::REGEX_ONLY,
                StepId::LOOKUP,
                StepId::EMBEDDING
            ]
        );
        assert!(c.remove(StepId::EMBEDDING));
        assert!(!c.remove(StepId::EMBEDDING), "second removal is a no-op");
        c.reorder(&[StepId::LOOKUP]);
        // Listed step moves to the front; the rest keep relative order.
        assert_eq!(
            c.step_ids(),
            vec![StepId::LOOKUP, StepId::HEADER, StepId::REGEX_ONLY]
        );
        // Unknown ids in the order are ignored.
        c.reorder(&[StepId::EMBEDDING, StepId::REGEX_ONLY]);
        assert_eq!(
            c.step_ids(),
            vec![StepId::REGEX_ONLY, StepId::LOOKUP, StepId::HEADER]
        );
    }

    #[test]
    #[should_panic(expected = "already has a step")]
    fn duplicate_step_ids_rejected() {
        let mut c = Cascade::standard();
        c.push(LookupStep);
    }

    #[test]
    fn reorder_by_cost_sorts_ranked_steps_cheapest_first() {
        use crate::cost::CostModel;
        let model = CostModel::new();
        // Synthetic measurements: embedding is cheap per unit yield,
        // lookup expensive, header in between.
        model.set(StepId::HEADER, 500.0, 0.5); // 1000 per yield
        model.set(StepId::LOOKUP, 9_000.0, 0.3); // 30000 per yield
        model.set(StepId::EMBEDDING, 400.0, 0.8); // 500 per yield
        let mut c = Cascade::standard();
        assert!(c.reorder_by_cost(&model));
        assert_eq!(
            c.step_ids(),
            vec![StepId::EMBEDDING, StepId::HEADER, StepId::LOOKUP]
        );
        // Idempotent: a second call changes nothing.
        assert!(!c.reorder_by_cost(&model));
        assert_eq!(
            c.step_ids(),
            vec![StepId::EMBEDDING, StepId::HEADER, StepId::LOOKUP]
        );
    }

    #[test]
    fn reorder_by_cost_leaves_unobserved_steps_in_place() {
        use crate::cost::CostModel;
        let model = CostModel::new();
        // Only the outer two steps are ranked; lookup (middle) has no
        // estimate and must keep its slot exactly.
        model.set(StepId::HEADER, 10_000.0, 0.5);
        model.set(StepId::EMBEDDING, 100.0, 0.5);
        let mut c = Cascade::standard();
        c.push(RegexOnlyStep); // also unobserved
        assert!(c.reorder_by_cost(&model));
        assert_eq!(
            c.step_ids(),
            vec![
                StepId::EMBEDDING,
                StepId::LOOKUP,
                StepId::HEADER,
                StepId::REGEX_ONLY
            ]
        );
    }

    #[test]
    fn reorder_by_cost_needs_two_ranked_steps() {
        use crate::cost::CostModel;
        let model = CostModel::new();
        let mut c = Cascade::standard();
        // Empty model: nothing to rank.
        assert!(!c.reorder_by_cost(&model));
        assert_eq!(c.step_ids(), Cascade::standard().step_ids());
        // One estimate is still not a ranking.
        model.set(StepId::EMBEDDING, 1.0, 1.0);
        assert!(!c.reorder_by_cost(&model));
        assert_eq!(c.step_ids(), Cascade::standard().step_ids());
    }

    #[test]
    fn weight_overrides_fall_back_to_config() {
        let config = SigmaTyperConfig::default();
        let mut c = Cascade::standard();
        assert_eq!(
            c.weight(StepId::EMBEDDING, &config),
            config.weight_embedding
        );
        assert_eq!(c.weight(StepId::REGEX_ONLY, &config), 1.0);
        c.set_weight(StepId::EMBEDDING, 0.25);
        assert_eq!(c.weight(StepId::EMBEDDING, &config), 0.25);
        // Removing a step drops its override too.
        c.remove(StepId::EMBEDDING);
        c.push(EmbeddingStep);
        assert_eq!(
            c.weight(StepId::EMBEDDING, &config),
            config.weight_embedding
        );
    }
}
