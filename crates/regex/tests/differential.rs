//! Differential testing: the Pike-VM engine must agree with the naive
//! backtracking oracle on randomly generated ASTs and inputs.

use proptest::prelude::*;
use tu_regex::ast::{Ast, CharMatcher, ClassItem};
use tu_regex::nfa::Regex;
use tu_regex::oracle::backtrack_full_match;

/// Strategy for a random AST over the alphabet {a, b, c}.
fn ast_strategy() -> impl Strategy<Value = Ast> {
    let leaf = prop_oneof![
        Just(Ast::Empty),
        prop_oneof![Just('a'), Just('b'), Just('c')]
            .prop_map(|c| Ast::Char(CharMatcher::Literal(c))),
        Just(Ast::Char(CharMatcher::Any)),
        Just(Ast::Char(CharMatcher::Class {
            negated: false,
            items: vec![ClassItem::Range('a', 'b')],
        })),
        Just(Ast::Char(CharMatcher::Class {
            negated: true,
            items: vec![ClassItem::Char('a')],
        })),
        Just(Ast::StartAnchor),
        Just(Ast::EndAnchor),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Ast::Concat),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Ast::Alt),
            (inner, 0u32..3, 0u32..3).prop_map(|(node, min, extra)| Ast::Repeat {
                node: Box::new(node),
                min,
                max: if extra == 0 { None } else { Some(min + extra) },
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn nfa_agrees_with_oracle(ast in ast_strategy(), input in "[abcd]{0,8}") {
        let regex = Regex::from_ast(&ast, "<generated>");
        let nfa = regex.is_full_match(&input);
        let oracle = backtrack_full_match(&ast, &input);
        prop_assert_eq!(nfa, oracle, "ast={:?} input={:?}", ast, input);
    }

    #[test]
    fn parse_then_match_agrees_with_oracle(
        pattern in r"[abc\.\*\+\?\|\(\)]{0,10}",
        input in "[abc]{0,6}",
    ) {
        // Only well-formed patterns are exercised; parse errors are fine.
        if let Ok(ast) = tu_regex::parse(&pattern) {
            let regex = Regex::from_ast(&ast, &pattern);
            prop_assert_eq!(
                regex.is_full_match(&input),
                backtrack_full_match(&ast, &input),
                "pattern={:?} input={:?}", pattern, input
            );
        }
    }

    #[test]
    fn full_match_implies_search_match(ast in ast_strategy(), input in "[abcd]{0,8}") {
        let regex = Regex::from_ast(&ast, "<generated>");
        if regex.is_full_match(&input) {
            prop_assert!(regex.is_match(&input));
        }
    }

    #[test]
    fn synthesized_regex_matches_all_examples(
        examples in prop::collection::vec("[a-z]{1,4}-?[0-9]{1,5}", 1..6)
    ) {
        let refs: Vec<&str> = examples.iter().map(String::as_str).collect();
        if let Some(s) = tu_regex::synthesize(&refs, &tu_regex::SynthesisConfig::default()) {
            for e in &refs {
                prop_assert!(s.regex.is_full_match(e), "pattern={} example={}", s.pattern, e);
            }
            // The rendered pattern must be re-parseable and equivalent on the examples.
            let reparsed = Regex::new(&s.pattern).unwrap();
            for e in &refs {
                prop_assert!(reparsed.is_full_match(e));
            }
        }
    }
}
