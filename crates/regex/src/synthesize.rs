//! Shape-based regex synthesis from example strings.
//!
//! SigmaTyper's DPBD loop (Figure 3) turns a demonstrated column into
//! labeling functions; for textual columns with regular *shape* (phone
//! numbers, SKUs, postal codes, ids) the most precise LF is a synthesized
//! regex. This module implements a pragmatic cousin of multi-modal regex
//! synthesis (Chen et al., PLDI'20 — reference \[5\] of the paper):
//! segment each example into character-class runs, align run signatures,
//! and generalize run lengths into counted quantifiers.

use crate::ast::{Ast, CharMatcher, ClassItem};
use crate::nfa::Regex;

/// Character class of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum RunClass {
    Digit,
    Lower,
    Upper,
    /// Letters of mixed/any case (generalization of Lower/Upper).
    Alpha,
    Space,
    /// A single punctuation/symbol literal.
    Literal(char),
}

/// A run: a class plus its observed length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Run {
    class: RunClass,
    len: usize,
}

/// Segment a string into maximal runs of one class.
fn segment(s: &str) -> Vec<Run> {
    let mut runs: Vec<Run> = Vec::new();
    for c in s.chars() {
        // ASCII-only classes: the rendered patterns use [a-z]-style ranges,
        // so non-ASCII characters become literals to keep the postcondition
        // (every example matches) exact.
        let class = if c.is_ascii_digit() {
            RunClass::Digit
        } else if c.is_ascii_lowercase() {
            RunClass::Lower
        } else if c.is_ascii_uppercase() {
            RunClass::Upper
        } else if c.is_whitespace() {
            RunClass::Space
        } else {
            RunClass::Literal(c)
        };
        match runs.last_mut() {
            // Literals never merge into runs: "--" stays two tokens so the
            // quantifier generalization happens per separator occurrence.
            Some(last) if last.class == class && !matches!(class, RunClass::Literal(_)) => {
                last.len += 1;
            }
            _ => runs.push(Run { class, len: 1 }),
        }
    }
    runs
}

/// Merge case-specific letter runs into `Alpha` (second-chance alignment).
fn generalize_case(runs: &[Run]) -> Vec<Run> {
    let mut out: Vec<Run> = Vec::new();
    for r in runs {
        let class = match r.class {
            RunClass::Lower | RunClass::Upper => RunClass::Alpha,
            c => c,
        };
        match out.last_mut() {
            Some(last) if last.class == class && !matches!(class, RunClass::Literal(_)) => {
                last.len += r.len;
            }
            _ => out.push(Run { class, len: r.len }),
        }
    }
    out
}

fn signature(runs: &[Run]) -> Vec<RunClass> {
    runs.iter().map(|r| r.class).collect()
}

/// A generalized run: class plus a length interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GenRun {
    class: RunClass,
    min: usize,
    max: usize,
}

/// Fold a group of aligned run sequences into per-position intervals.
fn generalize_group(group: &[Vec<Run>]) -> Vec<GenRun> {
    let template = &group[0];
    template
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let (mut lo, mut hi) = (usize::MAX, 0usize);
            for seq in group {
                lo = lo.min(seq[i].len);
                hi = hi.max(seq[i].len);
            }
            GenRun {
                class: r.class,
                min: lo,
                max: hi,
            }
        })
        .collect()
}

fn class_ast(class: RunClass) -> Ast {
    match class {
        RunClass::Digit => Ast::Char(CharMatcher::digit()),
        RunClass::Lower => Ast::Char(CharMatcher::Class {
            negated: false,
            items: vec![ClassItem::Range('a', 'z')],
        }),
        RunClass::Upper => Ast::Char(CharMatcher::Class {
            negated: false,
            items: vec![ClassItem::Range('A', 'Z')],
        }),
        RunClass::Alpha => Ast::Char(CharMatcher::Class {
            negated: false,
            items: vec![ClassItem::Range('a', 'z'), ClassItem::Range('A', 'Z')],
        }),
        RunClass::Space => Ast::Char(CharMatcher::space()),
        RunClass::Literal(c) => Ast::Char(CharMatcher::Literal(c)),
    }
}

fn class_pattern(class: RunClass) -> String {
    match class {
        RunClass::Digit => r"\d".to_string(),
        RunClass::Lower => "[a-z]".to_string(),
        RunClass::Upper => "[A-Z]".to_string(),
        RunClass::Alpha => "[a-zA-Z]".to_string(),
        RunClass::Space => r"\s".to_string(),
        RunClass::Literal(c) => {
            if c.is_ascii_punctuation() {
                format!("\\{c}")
            } else {
                c.to_string()
            }
        }
    }
}

fn render_runs(runs: &[GenRun], slack: usize) -> (Ast, String) {
    let mut parts = Vec::with_capacity(runs.len());
    let mut pattern = String::new();
    for r in runs {
        let min = r.min.saturating_sub(slack).max(1);
        let max = r.max + slack;
        let node = class_ast(r.class);
        pattern.push_str(&class_pattern(r.class));
        if min == 1 && max == 1 {
            parts.push(node);
        } else {
            pattern.push_str(&if min == max {
                format!("{{{min}}}")
            } else {
                format!("{{{min},{max}}}")
            });
            parts.push(Ast::Repeat {
                node: Box::new(node),
                min: min as u32,
                max: Some(max as u32),
            });
        }
    }
    (Ast::Concat(parts), pattern)
}

/// A synthesized regex: pattern text plus the compiled matcher.
#[derive(Debug, Clone)]
pub struct SynthesizedRegex {
    /// Rendered pattern (parseable by [`Regex::new`]).
    pub pattern: String,
    /// Compiled matcher.
    pub regex: Regex,
}

/// Options controlling synthesis.
#[derive(Debug, Clone, Copy)]
pub struct SynthesisConfig {
    /// Maximum number of distinct shape groups before giving up.
    pub max_groups: usize,
    /// Extra slack added to observed length intervals, so the regex
    /// tolerates slightly longer/shorter unseen values.
    pub length_slack: usize,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            max_groups: 4,
            length_slack: 1,
        }
    }
}

/// Synthesize a full-match regex generalizing the example strings.
///
/// Returns `None` when the examples are too heterogeneous to describe with
/// at most `max_groups` shape alternatives (e.g. free text). The returned
/// regex is guaranteed to fully match every example.
#[must_use]
pub fn synthesize(examples: &[&str], config: &SynthesisConfig) -> Option<SynthesizedRegex> {
    let examples: Vec<&str> = examples.iter().filter(|s| !s.is_empty()).copied().collect();
    if examples.is_empty() {
        return None;
    }
    let segmented: Vec<Vec<Run>> = examples.iter().map(|s| segment(s)).collect();

    // Pass 1: exact class signatures.
    let grouped = group_by_signature(&segmented);
    let grouped = if grouped.len() > config.max_groups {
        // Pass 2: merge letter cases and retry.
        let relaxed: Vec<Vec<Run>> = segmented.iter().map(|r| generalize_case(r)).collect();
        let g = group_by_signature(&relaxed);
        if g.len() > config.max_groups {
            return None;
        }
        g
    } else {
        grouped
    };

    let mut branches = Vec::with_capacity(grouped.len());
    let mut patterns = Vec::with_capacity(grouped.len());
    for group in &grouped {
        let gens = generalize_group(group);
        let (ast, pattern) = render_runs(&gens, config.length_slack);
        branches.push(ast);
        patterns.push(pattern);
    }
    let (ast, pattern) = if branches.len() == 1 {
        (
            branches.pop().expect("one branch"),
            patterns.pop().expect("one"),
        )
    } else {
        (Ast::Alt(branches), patterns.join("|"))
    };
    let regex = Regex::from_ast(&ast, &pattern);
    // Postcondition: every example must match.
    if examples.iter().any(|e| !regex.is_full_match(e)) {
        return None;
    }
    Some(SynthesizedRegex { pattern, regex })
}

fn group_by_signature(seqs: &[Vec<Run>]) -> Vec<Vec<Vec<Run>>> {
    let mut order: Vec<Vec<RunClass>> = Vec::new();
    let mut groups: std::collections::HashMap<Vec<RunClass>, Vec<Vec<Run>>> =
        std::collections::HashMap::new();
    for seq in seqs {
        let sig = signature(seq);
        if !groups.contains_key(&sig) {
            order.push(sig.clone());
        }
        groups.entry(sig).or_default().push(seq.clone());
    }
    order
        .into_iter()
        .map(|sig| groups.remove(&sig).expect("grouped"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(examples: &[&str]) -> SynthesizedRegex {
        synthesize(examples, &SynthesisConfig::default()).expect("synthesizable")
    }

    #[test]
    fn phone_numbers() {
        let s = synth(&["555-0199", "415-2120", "650-0333"]);
        assert!(s.regex.is_full_match("212-4567"));
        assert!(!s.regex.is_full_match("abc-defg"));
        assert!(!s.regex.is_full_match("555 0199"));
        // Pattern is re-parseable.
        let re = Regex::new(&s.pattern).unwrap();
        assert!(re.is_full_match("212-4567"));
    }

    #[test]
    fn generalizes_lengths_with_slack() {
        let s = synth(&["AB-12", "CD-345"]);
        // Observed letter len 2, digits 2..3 (+1 slack each side).
        assert!(s.regex.is_full_match("XY-6789")); // digits 4 ≤ 3+1
        assert!(!s.regex.is_full_match("XY-67890"));
        assert!(s.regex.is_full_match("X-99")); // letters 1 ≥ 2-1
    }

    #[test]
    fn currency_amounts() {
        let s = synth(&["$ 50K", "$ 60K", "$ 70K"]);
        assert!(s.regex.is_full_match("$ 80K"));
        assert!(!s.regex.is_full_match("80K"));
    }

    #[test]
    fn mixed_shapes_become_alternation() {
        let s = synth(&["2021-01-01", "01/02/2021"]);
        assert!(s.pattern.contains('|'));
        assert!(s.regex.is_full_match("1999-12-31"));
        assert!(s.regex.is_full_match("12/31/1999"));
        assert!(!s.regex.is_full_match("1999.12.31"));
    }

    #[test]
    fn case_merge_rescues_heterogeneous_examples() {
        // 5 casing variants exceed max_groups=4 until cases merge.
        let s = synthesize(
            &["ab1", "Ab2", "aB3", "AB4", "xY5"],
            &SynthesisConfig {
                max_groups: 2,
                length_slack: 0,
            },
        )
        .expect("case merge");
        assert!(s.regex.is_full_match("Qr7"));
    }

    #[test]
    fn free_text_refuses() {
        let out = synthesize(
            &[
                "the quick brown fox",
                "лорем ипсум",
                "x9!!",
                "a-b-c-d-e-f",
                "12:34:56.789",
                "{json: true}",
            ],
            &SynthesisConfig {
                max_groups: 3,
                length_slack: 0,
            },
        );
        assert!(out.is_none());
    }

    #[test]
    fn empty_and_blank_examples() {
        assert!(synthesize(&[], &SynthesisConfig::default()).is_none());
        assert!(synthesize(&["", ""], &SynthesisConfig::default()).is_none());
        // Blanks are dropped, rest still synthesizes.
        let s = synthesize(&["", "123"], &SynthesisConfig::default()).unwrap();
        assert!(s.regex.is_full_match("45"));
    }

    #[test]
    fn every_example_always_matches_postcondition() {
        let examples = ["usr_001", "usr_023", "usr_999", "usr_5"];
        let s = synth(&examples);
        for e in examples {
            assert!(s.regex.is_full_match(e), "example {e} must match");
        }
    }

    #[test]
    fn repeated_separators_not_merged() {
        let s = synth(&["a--b", "c--d"]);
        assert!(s.regex.is_full_match("x--y"));
        assert!(!s.regex.is_full_match("x-y"));
    }

    #[test]
    fn unicode_examples() {
        // Non-ASCII characters are kept as literals in the shape.
        let s = synth(&["café1", "paté2"]);
        assert!(s.regex.is_full_match("olé9"));
        assert!(!s.regex.is_full_match("cafe1"));
    }
}
