//! Regular-expression abstract syntax tree.

/// One item inside a character class `[...]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassItem {
    /// Single character.
    Char(char),
    /// Inclusive range `a-z`.
    Range(char, char),
}

impl ClassItem {
    /// Does this item match `c`?
    #[must_use]
    pub fn matches(&self, c: char) -> bool {
        match *self {
            ClassItem::Char(x) => x == c,
            ClassItem::Range(lo, hi) => (lo..=hi).contains(&c),
        }
    }
}

/// A character matcher: the consuming alphabet of the NFA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CharMatcher {
    /// Exact character.
    Literal(char),
    /// `.` — any character.
    Any,
    /// `[...]` or a shorthand class; `negated` for `[^...]`.
    Class {
        /// `true` for `[^...]`.
        negated: bool,
        /// Class members.
        items: Vec<ClassItem>,
    },
}

impl CharMatcher {
    /// Does this matcher accept `c`?
    #[must_use]
    pub fn matches(&self, c: char) -> bool {
        match self {
            CharMatcher::Literal(x) => *x == c,
            CharMatcher::Any => true,
            CharMatcher::Class { negated, items } => {
                let hit = items.iter().any(|i| i.matches(c));
                hit != *negated
            }
        }
    }

    /// The `\d` shorthand.
    #[must_use]
    pub fn digit() -> Self {
        CharMatcher::Class {
            negated: false,
            items: vec![ClassItem::Range('0', '9')],
        }
    }

    /// The `\w` shorthand (`[A-Za-z0-9_]`).
    #[must_use]
    pub fn word() -> Self {
        CharMatcher::Class {
            negated: false,
            items: vec![
                ClassItem::Range('a', 'z'),
                ClassItem::Range('A', 'Z'),
                ClassItem::Range('0', '9'),
                ClassItem::Char('_'),
            ],
        }
    }

    /// The `\s` shorthand.
    #[must_use]
    pub fn space() -> Self {
        CharMatcher::Class {
            negated: false,
            items: vec![
                ClassItem::Char(' '),
                ClassItem::Char('\t'),
                ClassItem::Char('\n'),
                ClassItem::Char('\r'),
            ],
        }
    }

    /// Negate a class (used for `\D`, `\W`, `\S`).
    #[must_use]
    pub fn negate(self) -> Self {
        match self {
            CharMatcher::Class { negated, items } => CharMatcher::Class {
                negated: !negated,
                items,
            },
            CharMatcher::Literal(c) => CharMatcher::Class {
                negated: true,
                items: vec![ClassItem::Char(c)],
            },
            // An empty non-negated class matches nothing.
            CharMatcher::Any => CharMatcher::Class {
                negated: false,
                items: vec![],
            },
        }
    }
}

/// Regex AST node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// Consume one character via the matcher.
    Char(CharMatcher),
    /// Sequence.
    Concat(Vec<Ast>),
    /// Alternation `a|b|c`.
    Alt(Vec<Ast>),
    /// Repetition `a{min,max}`; `max == None` means unbounded.
    Repeat {
        /// Repeated node.
        node: Box<Ast>,
        /// Minimum count.
        min: u32,
        /// Maximum count; `None` = ∞.
        max: Option<u32>,
    },
    /// `^` start-of-string anchor.
    StartAnchor,
    /// `$` end-of-string anchor.
    EndAnchor,
}

impl Ast {
    /// Convenience: `node*`.
    #[must_use]
    pub fn star(node: Ast) -> Ast {
        Ast::Repeat {
            node: Box::new(node),
            min: 0,
            max: None,
        }
    }

    /// Convenience: `node+`.
    #[must_use]
    pub fn plus(node: Ast) -> Ast {
        Ast::Repeat {
            node: Box::new(node),
            min: 1,
            max: None,
        }
    }

    /// Convenience: `node?`.
    #[must_use]
    pub fn opt(node: Ast) -> Ast {
        Ast::Repeat {
            node: Box::new(node),
            min: 0,
            max: Some(1),
        }
    }

    /// Convenience: a literal string as a concatenation of chars.
    #[must_use]
    pub fn literal(s: &str) -> Ast {
        Ast::Concat(
            s.chars()
                .map(|c| Ast::Char(CharMatcher::Literal(c)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_item_matching() {
        assert!(ClassItem::Char('a').matches('a'));
        assert!(!ClassItem::Char('a').matches('b'));
        assert!(ClassItem::Range('a', 'f').matches('c'));
        assert!(!ClassItem::Range('a', 'f').matches('g'));
    }

    #[test]
    fn matcher_semantics() {
        assert!(CharMatcher::Any.matches('x'));
        assert!(CharMatcher::digit().matches('5'));
        assert!(!CharMatcher::digit().matches('a'));
        assert!(CharMatcher::word().matches('_'));
        assert!(CharMatcher::space().matches('\t'));
        assert!(CharMatcher::digit().negate().matches('a'));
        assert!(!CharMatcher::digit().negate().matches('5'));
        // Negated-any matches nothing.
        assert!(!CharMatcher::Any.negate().matches('x'));
        assert!(CharMatcher::Literal('q').negate().matches('r'));
    }

    #[test]
    fn conveniences() {
        assert_eq!(
            Ast::literal("ab"),
            Ast::Concat(vec![
                Ast::Char(CharMatcher::Literal('a')),
                Ast::Char(CharMatcher::Literal('b')),
            ])
        );
        match Ast::star(Ast::Empty) {
            Ast::Repeat {
                min: 0, max: None, ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        match Ast::opt(Ast::Empty) {
            Ast::Repeat {
                min: 0,
                max: Some(1),
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
