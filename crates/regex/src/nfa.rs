//! Thompson NFA construction and a Pike-style VM simulation.
//!
//! Linear-time matching in the input size: no backtracking, so the engine
//! is safe to run over untrusted cell values (a requirement for a lookup
//! step executed on every column of every customer table).

use crate::ast::{Ast, CharMatcher};

/// One NFA state.
#[derive(Debug, Clone)]
enum State {
    /// Consume a character matching the matcher, then go to `next`.
    Char(CharMatcher, usize),
    /// Epsilon-split to both targets.
    Split(usize, usize),
    /// Epsilon move valid only at input start.
    AssertStart(usize),
    /// Epsilon move valid only at input end.
    AssertEnd(usize),
    /// Accepting state.
    Match,
}

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    states: Vec<State>,
    start: usize,
    pattern: String,
}

/// Sentinel for "not yet patched" transition targets.
const HOLE: usize = usize::MAX;

struct Compiler {
    states: Vec<State>,
}

/// A compiled fragment: entry state + list of dangling exits to patch.
struct Frag {
    start: usize,
    /// (state index, which branch: 0 = first/only, 1 = second of a split)
    outs: Vec<(usize, u8)>,
}

impl Compiler {
    fn push(&mut self, s: State) -> usize {
        self.states.push(s);
        self.states.len() - 1
    }

    fn patch(&mut self, outs: &[(usize, u8)], target: usize) {
        for &(idx, branch) in outs {
            match &mut self.states[idx] {
                State::Char(_, next) | State::AssertStart(next) | State::AssertEnd(next) => {
                    *next = target;
                }
                State::Split(a, b) => {
                    if branch == 0 {
                        *a = target;
                    } else {
                        *b = target;
                    }
                }
                State::Match => unreachable!("match state has no out"),
            }
        }
    }

    fn compile(&mut self, ast: &Ast) -> Frag {
        match ast {
            Ast::Empty => {
                // A split with both branches dangling to the same place acts
                // as a no-op epsilon node.
                let s = self.push(State::Split(HOLE, HOLE));
                Frag {
                    start: s,
                    outs: vec![(s, 0), (s, 1)],
                }
            }
            Ast::Char(m) => {
                let s = self.push(State::Char(m.clone(), HOLE));
                Frag {
                    start: s,
                    outs: vec![(s, 0)],
                }
            }
            Ast::StartAnchor => {
                let s = self.push(State::AssertStart(HOLE));
                Frag {
                    start: s,
                    outs: vec![(s, 0)],
                }
            }
            Ast::EndAnchor => {
                let s = self.push(State::AssertEnd(HOLE));
                Frag {
                    start: s,
                    outs: vec![(s, 0)],
                }
            }
            Ast::Concat(items) => {
                let mut iter = items.iter();
                let first = match iter.next() {
                    Some(f) => self.compile(f),
                    None => return self.compile(&Ast::Empty),
                };
                let mut outs = first.outs;
                for item in iter {
                    let next = self.compile(item);
                    self.patch(&outs, next.start);
                    outs = next.outs;
                }
                Frag {
                    start: first.start,
                    outs,
                }
            }
            Ast::Alt(branches) => {
                assert!(!branches.is_empty(), "empty alternation");
                let mut starts = Vec::with_capacity(branches.len());
                let mut outs = Vec::new();
                for b in branches {
                    let f = self.compile(b);
                    starts.push(f.start);
                    outs.extend(f.outs);
                }
                // Chain splits: s1 = Split(b0, s2), s2 = Split(b1, b2)...
                let mut entry = *starts.last().expect("nonempty");
                for &s in starts.iter().rev().skip(1) {
                    entry = self.push(State::Split(s, entry));
                }
                Frag { start: entry, outs }
            }
            Ast::Repeat { node, min, max } => self.compile_repeat(node, *min, *max),
        }
    }

    fn compile_repeat(&mut self, node: &Ast, min: u32, max: Option<u32>) -> Frag {
        match max {
            None => {
                if min == 0 {
                    // node* : split(enter, exit); loop back.
                    let split = self.push(State::Split(HOLE, HOLE));
                    let body = self.compile(node);
                    match &mut self.states[split] {
                        State::Split(a, _) => *a = body.start,
                        _ => unreachable!(),
                    }
                    self.patch(&body.outs, split);
                    Frag {
                        start: split,
                        outs: vec![(split, 1)],
                    }
                } else {
                    // node{min,} = node{min-1 copies} node+
                    let mut prefix_outs: Vec<(usize, u8)> = Vec::new();
                    let mut start = None;
                    for _ in 0..min - 1 {
                        let f = self.compile(node);
                        if start.is_some() {
                            self.patch(&prefix_outs, f.start);
                        } else {
                            start = Some(f.start);
                        }
                        prefix_outs = f.outs;
                    }
                    // node+ : body; split(back to body, exit)
                    let body = self.compile(node);
                    let split = self.push(State::Split(body.start, HOLE));
                    self.patch(&body.outs, split);
                    if let Some(s) = start {
                        self.patch(&prefix_outs, body.start);
                        Frag {
                            start: s,
                            outs: vec![(split, 1)],
                        }
                    } else {
                        Frag {
                            start: body.start,
                            outs: vec![(split, 1)],
                        }
                    }
                }
            }
            Some(max) => {
                // Expand to min mandatory copies + (max-min) optional copies.
                let mut outs: Vec<(usize, u8)> = Vec::new();
                let mut start: Option<usize> = None;
                for _ in 0..min {
                    let f = self.compile(node);
                    if start.is_some() {
                        self.patch(&outs, f.start);
                    } else {
                        start = Some(f.start);
                    }
                    outs = f.outs;
                }
                let mut skip_outs: Vec<(usize, u8)> = Vec::new();
                for _ in min..max {
                    let split = self.push(State::Split(HOLE, HOLE));
                    if start.is_some() {
                        self.patch(&outs, split);
                    } else {
                        start = Some(split);
                    }
                    let f = self.compile(node);
                    match &mut self.states[split] {
                        State::Split(a, _) => *a = f.start,
                        _ => unreachable!(),
                    }
                    skip_outs.push((split, 1));
                    outs = f.outs;
                }
                outs.extend(skip_outs);
                match start {
                    Some(s) => Frag { start: s, outs },
                    None => self.compile(&Ast::Empty), // {0,0}
                }
            }
        }
    }
}

impl Regex {
    /// Compile a pattern string.
    pub fn new(pattern: &str) -> Result<Self, crate::parser::ParseError> {
        let ast = crate::parser::parse(pattern)?;
        Ok(Self::from_ast(&ast, pattern))
    }

    /// Compile an already-parsed AST (used by the synthesizer).
    #[must_use]
    pub fn from_ast(ast: &Ast, pattern: &str) -> Self {
        let mut c = Compiler { states: Vec::new() };
        let frag = c.compile(ast);
        let m = c.push(State::Match);
        c.patch(&frag.outs, m);
        Regex {
            states: c.states,
            start: frag.start,
            pattern: pattern.to_owned(),
        }
    }

    /// The original pattern string.
    #[must_use]
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Number of compiled states (used for testing/budgeting).
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.states.len()
    }

    /// Add `state` plus its epsilon closure to `set`.
    fn add_state(
        &self,
        set: &mut Vec<usize>,
        on: &mut [bool],
        state: usize,
        at_start: bool,
        at_end: bool,
    ) {
        if on[state] {
            return;
        }
        on[state] = true;
        match &self.states[state] {
            State::Split(a, b) => {
                let (a, b) = (*a, *b);
                self.add_state(set, on, a, at_start, at_end);
                self.add_state(set, on, b, at_start, at_end);
            }
            State::AssertStart(next) => {
                let next = *next;
                if at_start {
                    self.add_state(set, on, next, at_start, at_end);
                }
            }
            State::AssertEnd(next) => {
                let next = *next;
                if at_end {
                    self.add_state(set, on, next, at_start, at_end);
                }
            }
            State::Char(..) | State::Match => set.push(state),
        }
    }

    /// Does the pattern match the **entire** input string?
    ///
    /// This is the semantics used by the value-lookup step: a cell either
    /// *is* a phone number or it is not; substring hits would inflate
    /// confidence.
    #[must_use]
    pub fn is_full_match(&self, input: &str) -> bool {
        let chars: Vec<char> = input.chars().collect();
        let n = chars.len();
        let mut current: Vec<usize> = Vec::with_capacity(self.states.len());
        let mut on = vec![false; self.states.len()];
        self.add_state(&mut current, &mut on, self.start, true, n == 0);
        for (i, &c) in chars.iter().enumerate() {
            let at_end_next = i + 1 == n;
            let mut next: Vec<usize> = Vec::with_capacity(self.states.len());
            let mut on_next = vec![false; self.states.len()];
            for &s in &current {
                if let State::Char(m, to) = &self.states[s] {
                    if m.matches(c) {
                        self.add_state(&mut next, &mut on_next, *to, false, at_end_next);
                    }
                }
            }
            current = next;
            on = on_next;
            if current.is_empty() {
                return false;
            }
        }
        let _ = on;
        current
            .iter()
            .any(|&s| matches!(self.states[s], State::Match))
    }

    /// Does the pattern match anywhere in the input (unanchored search)?
    #[must_use]
    pub fn is_match(&self, input: &str) -> bool {
        let chars: Vec<char> = input.chars().collect();
        let n = chars.len();
        let mut current: Vec<usize> = Vec::with_capacity(self.states.len());
        let mut on = vec![false; self.states.len()];
        self.add_state(&mut current, &mut on, self.start, true, n == 0);
        if current
            .iter()
            .any(|&s| matches!(self.states[s], State::Match))
        {
            return true;
        }
        for (i, &c) in chars.iter().enumerate() {
            let at_end_next = i + 1 == n;
            let mut next: Vec<usize> = Vec::with_capacity(self.states.len());
            let mut on_next = vec![false; self.states.len()];
            for &s in &current {
                if let State::Char(m, to) = &self.states[s] {
                    if m.matches(c) {
                        self.add_state(&mut next, &mut on_next, *to, false, at_end_next);
                    }
                }
            }
            // Unanchored: also restart the pattern at position i+1.
            self.add_state(&mut next, &mut on_next, self.start, false, at_end_next);
            current = next;
            on = on_next;
            if current
                .iter()
                .any(|&s| matches!(self.states[s], State::Match))
            {
                return true;
            }
        }
        let _ = on;
        false
    }

    /// Fraction of `values` that fully match; `0.0` for an empty slice.
    #[must_use]
    pub fn match_fraction<S: AsRef<str>>(&self, values: &[S]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        let hits = values
            .iter()
            .filter(|v| self.is_full_match(v.as_ref()))
            .count();
        hits as f64 / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(p: &str) -> Regex {
        Regex::new(p).unwrap()
    }

    #[test]
    fn literal_full_match() {
        let r = re("abc");
        assert!(r.is_full_match("abc"));
        assert!(!r.is_full_match("ab"));
        assert!(!r.is_full_match("abcd"));
        assert!(!r.is_full_match(""));
    }

    #[test]
    fn empty_pattern() {
        let r = re("");
        assert!(r.is_full_match(""));
        assert!(!r.is_full_match("a"));
        assert!(r.is_match("anything"));
    }

    #[test]
    fn star_plus_opt() {
        let r = re("ab*c");
        assert!(r.is_full_match("ac"));
        assert!(r.is_full_match("abbbc"));
        assert!(!r.is_full_match("abb"));
        let r = re("ab+c");
        assert!(!r.is_full_match("ac"));
        assert!(r.is_full_match("abc"));
        let r = re("ab?c");
        assert!(r.is_full_match("ac"));
        assert!(r.is_full_match("abc"));
        assert!(!r.is_full_match("abbc"));
    }

    #[test]
    fn counted_repeats() {
        let r = re(r"\d{3}-\d{4}");
        assert!(r.is_full_match("555-0199"));
        assert!(!r.is_full_match("55-0199"));
        let r = re("a{2,4}");
        assert!(!r.is_full_match("a"));
        assert!(r.is_full_match("aa"));
        assert!(r.is_full_match("aaaa"));
        assert!(!r.is_full_match("aaaaa"));
        let r = re("a{2,}");
        assert!(r.is_full_match("aaaaaa"));
        assert!(!r.is_full_match("a"));
        let r = re("a{0,2}");
        assert!(r.is_full_match(""));
        assert!(r.is_full_match("aa"));
        assert!(!r.is_full_match("aaa"));
    }

    #[test]
    fn alternation() {
        let r = re("cat|dog|bird");
        assert!(r.is_full_match("cat"));
        assert!(r.is_full_match("bird"));
        assert!(!r.is_full_match("catdog"));
        let r = re("(ab|cd)+");
        assert!(r.is_full_match("abcdab"));
        assert!(!r.is_full_match("abc"));
    }

    #[test]
    fn classes_and_shorthands() {
        let r = re("[a-f0-9]+");
        assert!(r.is_full_match("deadbeef42"));
        assert!(!r.is_full_match("xyz"));
        let r = re("[^0-9]+");
        assert!(r.is_full_match("abc"));
        assert!(!r.is_full_match("ab1"));
        let r = re(r"\w+@\w+\.\w{2,3}");
        assert!(r.is_full_match("ada@sigma.com"));
        assert!(!r.is_full_match("ada@sigma"));
    }

    #[test]
    fn anchors_in_search() {
        let r = re("^abc");
        assert!(r.is_match("abcdef"));
        assert!(!r.is_match("xabc"));
        let r = re("xyz$");
        assert!(r.is_match("wxyz"));
        assert!(!r.is_match("xyzw"));
        let r = re("^only$");
        assert!(r.is_match("only"));
        assert!(!r.is_match("only "));
    }

    #[test]
    fn search_vs_full() {
        let r = re("bc");
        assert!(r.is_match("abcd"));
        assert!(!r.is_full_match("abcd"));
        assert!(r.is_match("bc"));
    }

    #[test]
    fn unicode_input() {
        let r = re("é+");
        assert!(r.is_full_match("ééé"));
        let r = re(".");
        assert!(r.is_full_match("漢"));
    }

    #[test]
    fn pathological_no_blowup() {
        // (a*)* style patterns are linear here, not exponential.
        let r = re("(a*)*b");
        let input = "a".repeat(200);
        assert!(!r.is_full_match(&input));
        let ok = format!("{input}b");
        assert!(r.is_full_match(&ok));
        // a?^n a^n — the classic backtracking killer.
        let n = 20;
        let patt = format!("{}{}", "a?".repeat(n), "a".repeat(n));
        let r = re(&patt);
        assert!(r.is_full_match(&"a".repeat(n)));
    }

    #[test]
    fn match_fraction() {
        let r = re(r"\d+");
        let vals = ["1", "22", "x", "333"];
        assert!((r.match_fraction(&vals) - 0.75).abs() < 1e-12);
        assert_eq!(r.match_fraction::<&str>(&[]), 0.0);
    }

    #[test]
    fn nested_repeats() {
        let r = re("(ab{2}){2}");
        assert!(r.is_full_match("abbabb"));
        assert!(!r.is_full_match("abab"));
    }

    #[test]
    fn pattern_accessor() {
        assert_eq!(re("a+").pattern(), "a+");
        assert!(re("a+").n_states() >= 2);
    }
}
