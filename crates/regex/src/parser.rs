//! Recursive-descent parser for the supported regex dialect.
//!
//! Supported syntax: literals, `.`, `[...]`/`[^...]` classes with ranges,
//! shorthand classes `\d \D \w \W \s \S`, escapes, grouping `(...)`,
//! alternation `|`, quantifiers `* + ? {m} {m,} {m,n}`, anchors `^ $`.

use crate::ast::{Ast, CharMatcher, ClassItem};

/// Parse error with a byte position into the pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Character index in the pattern.
    pub position: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "regex parse error at {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            position: self.pos,
        })
    }

    fn parse_alternation(&mut self) -> Result<Ast, ParseError> {
        let mut branches = vec![self.parse_concat()?];
        while self.peek() == Some('|') {
            self.next();
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alt(branches)
        })
    }

    fn parse_concat(&mut self) -> Result<Ast, ParseError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().expect("one item"),
            _ => Ast::Concat(items),
        })
    }

    fn parse_repeat(&mut self) -> Result<Ast, ParseError> {
        let atom = self.parse_atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.next();
                (0, None)
            }
            Some('+') => {
                self.next();
                (1, None)
            }
            Some('?') => {
                self.next();
                (0, Some(1))
            }
            Some('{') => {
                self.next();
                let min = self.parse_number()?;
                match self.peek() {
                    Some('}') => {
                        self.next();
                        (min, Some(min))
                    }
                    Some(',') => {
                        self.next();
                        if self.peek() == Some('}') {
                            self.next();
                            (min, None)
                        } else {
                            let max = self.parse_number()?;
                            if self.next() != Some('}') {
                                return self.err("expected '}'");
                            }
                            if max < min {
                                return self.err("quantifier max < min");
                            }
                            (min, Some(max))
                        }
                    }
                    _ => return self.err("expected '}' or ','"),
                }
            }
            _ => return Ok(atom),
        };
        if matches!(atom, Ast::StartAnchor | Ast::EndAnchor) {
            return self.err("quantifier on anchor");
        }
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
        })
    }

    fn parse_number(&mut self) -> Result<u32, ParseError> {
        let start = self.pos;
        let mut n: u32 = 0;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                n = n
                    .checked_mul(10)
                    .and_then(|n| n.checked_add(d))
                    .ok_or(ParseError {
                        message: "quantifier too large".into(),
                        position: self.pos,
                    })?;
                self.next();
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected number");
        }
        if n > 1000 {
            return self.err("quantifier above 1000 not supported");
        }
        Ok(n)
    }

    fn parse_atom(&mut self) -> Result<Ast, ParseError> {
        match self.peek() {
            None => self.err("unexpected end of pattern"),
            Some('(') => {
                self.next();
                // Non-capturing group marker is accepted and ignored.
                if self.peek() == Some('?') {
                    self.next();
                    if self.next() != Some(':') {
                        return self.err("only (?: groups supported");
                    }
                }
                let inner = self.parse_alternation()?;
                if self.next() != Some(')') {
                    return self.err("expected ')'");
                }
                Ok(inner)
            }
            Some('[') => {
                self.next();
                self.parse_class()
            }
            Some('.') => {
                self.next();
                Ok(Ast::Char(CharMatcher::Any))
            }
            Some('^') => {
                self.next();
                Ok(Ast::StartAnchor)
            }
            Some('$') => {
                self.next();
                Ok(Ast::EndAnchor)
            }
            Some('\\') => {
                self.next();
                let m = self.parse_escape()?;
                Ok(Ast::Char(m))
            }
            Some(c @ ('*' | '+' | '?' | '{')) => self.err(format!("dangling quantifier '{c}'")),
            Some(c) => {
                self.next();
                Ok(Ast::Char(CharMatcher::Literal(c)))
            }
        }
    }

    fn parse_escape(&mut self) -> Result<CharMatcher, ParseError> {
        match self.next() {
            None => self.err("dangling escape"),
            Some('d') => Ok(CharMatcher::digit()),
            Some('D') => Ok(CharMatcher::digit().negate()),
            Some('w') => Ok(CharMatcher::word()),
            Some('W') => Ok(CharMatcher::word().negate()),
            Some('s') => Ok(CharMatcher::space()),
            Some('S') => Ok(CharMatcher::space().negate()),
            Some('n') => Ok(CharMatcher::Literal('\n')),
            Some('t') => Ok(CharMatcher::Literal('\t')),
            Some('r') => Ok(CharMatcher::Literal('\r')),
            // Any punctuation escapes itself: \. \\ \[ \( \+ …
            Some(c) if c.is_ascii_punctuation() => Ok(CharMatcher::Literal(c)),
            Some(c) => self.err(format!("unknown escape '\\{c}'")),
        }
    }

    fn parse_class(&mut self) -> Result<Ast, ParseError> {
        let negated = if self.peek() == Some('^') {
            self.next();
            true
        } else {
            false
        };
        let mut items = Vec::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated character class"),
                Some(']') if !items.is_empty() || negated => {
                    // `[]` is invalid but `[]]`-style first-position ] literal
                    // is not supported; require at least one item.
                    if items.is_empty() {
                        return self.err("empty character class");
                    }
                    self.next();
                    break;
                }
                Some(']') => return self.err("empty character class"),
                _ => {}
            }
            let lo = match self.next() {
                Some('\\') => match self.parse_escape()? {
                    CharMatcher::Literal(c) => ClassItem::Char(c),
                    CharMatcher::Class {
                        negated: false,
                        items: sub,
                    } => {
                        // Shorthand inside class: splice its items in.
                        items.extend(sub);
                        continue;
                    }
                    _ => return self.err("negated shorthand not allowed in class"),
                },
                Some(c) => ClassItem::Char(c),
                None => return self.err("unterminated character class"),
            };
            // Possible range `a-z` (a `-` before `]` is a literal).
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.next(); // consume '-'
                let hi = match self.next() {
                    Some('\\') => match self.parse_escape()? {
                        CharMatcher::Literal(c) => c,
                        _ => return self.err("class shorthand cannot end a range"),
                    },
                    Some(c) => c,
                    None => return self.err("unterminated character class"),
                };
                let ClassItem::Char(lo_c) = lo else {
                    return self.err("invalid range start");
                };
                if hi < lo_c {
                    return self.err("inverted class range");
                }
                items.push(ClassItem::Range(lo_c, hi));
            } else {
                items.push(lo);
            }
        }
        Ok(Ast::Char(CharMatcher::Class { negated, items }))
    }
}

/// Parse a pattern into an [`Ast`].
pub fn parse(pattern: &str) -> Result<Ast, ParseError> {
    let mut p = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
    };
    let ast = p.parse_alternation()?;
    if p.pos != p.chars.len() {
        return p.err("unbalanced ')'");
    }
    Ok(ast)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_and_concat() {
        assert_eq!(parse("ab").unwrap(), Ast::literal("ab"));
        assert_eq!(parse("").unwrap(), Ast::Empty);
    }

    #[test]
    fn alternation_and_groups() {
        let a = parse("a|b|c").unwrap();
        assert!(matches!(a, Ast::Alt(ref v) if v.len() == 3));
        let g = parse("(ab)+").unwrap();
        assert!(matches!(
            g,
            Ast::Repeat {
                min: 1,
                max: None,
                ..
            }
        ));
        assert_eq!(parse("(?:ab)").unwrap(), Ast::literal("ab"));
    }

    #[test]
    fn quantifiers() {
        assert!(matches!(
            parse("a*").unwrap(),
            Ast::Repeat {
                min: 0,
                max: None,
                ..
            }
        ));
        assert!(matches!(
            parse("a{3}").unwrap(),
            Ast::Repeat {
                min: 3,
                max: Some(3),
                ..
            }
        ));
        assert!(matches!(
            parse("a{2,}").unwrap(),
            Ast::Repeat {
                min: 2,
                max: None,
                ..
            }
        ));
        assert!(matches!(
            parse("a{2,5}").unwrap(),
            Ast::Repeat {
                min: 2,
                max: Some(5),
                ..
            }
        ));
    }

    #[test]
    fn classes() {
        let c = parse("[a-z0-9_]").unwrap();
        match c {
            Ast::Char(CharMatcher::Class {
                negated: false,
                items,
            }) => {
                assert_eq!(items.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        let n = parse("[^abc]").unwrap();
        assert!(matches!(
            n,
            Ast::Char(CharMatcher::Class { negated: true, .. })
        ));
        // Shorthand splicing and trailing literal dash.
        let s = parse(r"[\d-]").unwrap();
        match s {
            Ast::Char(CharMatcher::Class { items, .. }) => {
                assert!(items.contains(&ClassItem::Char('-')));
                assert!(items.contains(&ClassItem::Range('0', '9')));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn escapes() {
        assert_eq!(parse(r"\.").unwrap(), Ast::Char(CharMatcher::Literal('.')));
        assert_eq!(parse(r"\d").unwrap(), Ast::Char(CharMatcher::digit()));
        assert_eq!(parse(r"\t").unwrap(), Ast::Char(CharMatcher::Literal('\t')));
    }

    #[test]
    fn anchors() {
        let a = parse("^a$").unwrap();
        match a {
            Ast::Concat(v) => {
                assert_eq!(v[0], Ast::StartAnchor);
                assert_eq!(v[2], Ast::EndAnchor);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_cases() {
        for bad in [
            "(", ")", "a)", "(a", "[", "[]", "[z-a]", "a{2,1}", "*a", "a{99999}", r"\", r"\q",
            "a**", // second * quantifies a Repeat? no: dangling
            "^*",
        ] {
            assert!(parse(bad).is_err(), "pattern {bad:?} should fail");
        }
    }

    #[test]
    fn error_positions_reported() {
        let e = parse("ab[").unwrap_err();
        assert!(e.position >= 2, "position {}", e.position);
        assert!(e.to_string().contains("parse error"));
    }
}
