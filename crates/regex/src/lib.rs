//! # tu-regex
//!
//! A from-scratch regular-expression substrate for the CIDR'22 *Making
//! Table Understanding Work in Practice* reproduction:
//!
//! * a parser for a pragmatic dialect (classes, shorthand escapes,
//!   counted quantifiers, alternation, anchors),
//! * a Thompson-NFA / Pike-VM engine with **linear-time** matching —
//!   safe against pathological patterns when scanning untrusted cell
//!   values in the pipeline's value-lookup step,
//! * shape-based **regex synthesis** from example values, the mechanism
//!   DPBD uses to turn a demonstrated column into a labeling function
//!   (paper Figure 3, reference \[5\]),
//! * a naive backtracking [`oracle`] used for differential testing.

#![warn(missing_docs)]

pub mod ast;
pub mod nfa;
pub mod oracle;
pub mod parser;
pub mod synthesize;

pub use ast::{Ast, CharMatcher, ClassItem};
pub use nfa::Regex;
pub use parser::{parse, ParseError};
pub use synthesize::{synthesize, SynthesisConfig, SynthesizedRegex};
