//! Reference backtracking matcher.
//!
//! An obviously-correct (but exponential-worst-case) implementation of the
//! same dialect, used as the differential-testing oracle for the NFA
//! engine. Not for production matching.

use crate::ast::Ast;

/// Match `ast` against the **entire** input using naive backtracking.
#[must_use]
pub fn backtrack_full_match(ast: &Ast, input: &str) -> bool {
    let chars: Vec<char> = input.chars().collect();
    let mut results = Vec::new();
    match_at(ast, &chars, 0, &mut results);
    results.contains(&chars.len())
}

/// Collect every end position reachable by matching `ast` starting at `pos`.
fn match_at(ast: &Ast, input: &[char], pos: usize, out: &mut Vec<usize>) {
    match ast {
        Ast::Empty => out.push(pos),
        Ast::Char(m) => {
            if pos < input.len() && m.matches(input[pos]) {
                out.push(pos + 1);
            }
        }
        Ast::StartAnchor => {
            if pos == 0 {
                out.push(pos);
            }
        }
        Ast::EndAnchor => {
            if pos == input.len() {
                out.push(pos);
            }
        }
        Ast::Concat(items) => {
            let mut positions = vec![pos];
            for item in items {
                let mut next = Vec::new();
                for &p in &positions {
                    match_at(item, input, p, &mut next);
                }
                next.sort_unstable();
                next.dedup();
                if next.is_empty() {
                    return;
                }
                positions = next;
            }
            out.extend(positions);
        }
        Ast::Alt(branches) => {
            for b in branches {
                match_at(b, input, pos, out);
            }
            out.sort_unstable();
            out.dedup();
        }
        Ast::Repeat { node, min, max } => {
            // Breadth-first set-of-positions unrolling. Termination: for
            // an unbounded max, any endpoint reachable with more than
            // min + len + 2 repetitions is also reachable with fewer,
            // because repetitions that consume no input are idempotent
            // and can be dropped down to the minimum count, and at most
            // `len` repetitions can consume input.
            let min = *min as usize;
            let hard_cap = match max {
                Some(m) => *m as usize,
                None => min + input.len() + 2,
            };
            let mut frontier = vec![pos];
            let mut all: Vec<usize> = if min == 0 { vec![pos] } else { Vec::new() };
            for k in 1..=hard_cap {
                let mut next = Vec::new();
                for &p in &frontier {
                    match_at(node, input, p, &mut next);
                }
                next.sort_unstable();
                next.dedup();
                if next.is_empty() {
                    break;
                }
                if k >= min {
                    all.extend(&next);
                }
                if next == frontier {
                    if k < min && max.is_none() {
                        // Fixpoint below min with unbounded max: the set at
                        // count `min` equals this one.
                        all.extend(&next);
                    }
                    if k >= min || max.is_none() {
                        break;
                    }
                }
                frontier = next;
            }
            all.sort_unstable();
            all.dedup();
            out.extend(all);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(pattern: &str, input: &str, expected: bool) {
        let ast = parse(pattern).unwrap();
        assert_eq!(
            backtrack_full_match(&ast, input),
            expected,
            "pattern={pattern:?} input={input:?}"
        );
    }

    #[test]
    fn agrees_with_basics() {
        check("abc", "abc", true);
        check("abc", "abd", false);
        check("a*", "", true);
        check("a*", "aaa", true);
        check("a+", "", false);
        check("a|b", "b", true);
        check("(ab|cd)+", "abcd", true);
        check("a{2,3}", "aaaa", false);
        check(r"\d+", "123", true);
        check("^a$", "a", true);
    }

    #[test]
    fn nullable_repeat_terminates() {
        check("(a?)*", "aaa", true);
        check("(a?)*b", "b", true);
        check("(a*)*", "", true);
    }
}
