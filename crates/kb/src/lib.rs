//! # tu-kb
//!
//! The knowledge-base substrate: in-code entity dictionaries (cities,
//! countries, names, companies, currencies, …) with a normalized
//! value→type lookup index. Stands in for the DBpedia Knowledge Base the
//! paper's value-lookup step consults (§4.3), and doubles as the
//! vocabulary for the synthetic corpus generator so that generated values
//! and lookup coverage stay mutually consistent.

#![warn(missing_docs)]

pub mod data;
pub mod kb;

pub use kb::KnowledgeBase;
