//! Value→type lookup over entity dictionaries.

use std::collections::HashMap;
use tu_ontology::{builtin_id, Ontology, TypeId};
use tu_text::normalize_value;

/// The knowledge base: per-type entity dictionaries plus a normalized
/// value index, playing the role DBpedia KB plays in the paper's lookup
/// step (§4.3, rule source 2).
#[derive(Debug, Clone, Default)]
pub struct KnowledgeBase {
    entries: HashMap<TypeId, Vec<String>>,
    index: HashMap<String, Vec<TypeId>>,
}

impl KnowledgeBase {
    /// An empty knowledge base.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the knowledge base wired to the built-in ontology's types.
    #[must_use]
    pub fn builtin(ontology: &Ontology) -> Self {
        use crate::data;
        let mut kb = Self::new();
        let mut add = |name: &str, values: &[&str]| {
            kb.add_entries(builtin_id(ontology, name), values);
        };
        add("first name", data::FIRST_NAMES);
        add("last name", data::LAST_NAMES);
        // Single name tokens are also evidence for the general `name` type.
        add("name", data::FIRST_NAMES);
        add("name", data::LAST_NAMES);
        add("city", data::CITIES);
        add("country", data::COUNTRIES);
        add("country code", data::COUNTRY_CODES);
        add("state", data::US_STATES);
        add("company", data::COMPANIES);
        add("product", data::PRODUCTS);
        add("brand", data::BRANDS);
        add("language", data::LANGUAGES);
        add("currency", data::CURRENCIES);
        add("currency code", data::CURRENCY_CODES);
        add("month", data::MONTHS);
        add("weekday", data::WEEKDAYS);
        add("blood type", data::BLOOD_TYPES);
        add("continent", data::CONTINENTS);
        add("job title", data::JOB_TITLES);
        add("payment method", data::PAYMENT_METHODS);
        add("status", data::STATUSES);
        add("gender", data::GENDERS);
        add("file extension", data::FILE_EXTENSIONS);
        add("mime type", data::MIME_TYPES);
        add("team", data::TEAMS);
        add("school", data::SCHOOLS);
        add("grade", data::GRADES);
        kb
    }

    /// Add dictionary entries for a type (normalized into the index).
    pub fn add_entries(&mut self, ty: TypeId, values: &[&str]) {
        let list = self.entries.entry(ty).or_default();
        for v in values {
            let norm = normalize_value(v);
            if norm.is_empty() {
                continue;
            }
            let types = self.index.entry(norm).or_default();
            if !types.contains(&ty) {
                types.push(ty);
            }
            list.push((*v).to_owned());
        }
    }

    /// Types whose dictionary contains the (normalized) value.
    #[must_use]
    pub fn types_for_value(&self, value: &str) -> &[TypeId] {
        self.index
            .get(&normalize_value(value))
            .map_or(&[], Vec::as_slice)
    }

    /// Does the dictionary of `ty` contain `value`?
    #[must_use]
    pub fn contains(&self, ty: TypeId, value: &str) -> bool {
        self.types_for_value(value).contains(&ty)
    }

    /// Dictionary of a type (original casing), if present.
    #[must_use]
    pub fn dictionary(&self, ty: TypeId) -> Option<&[String]> {
        self.entries.get(&ty).map(Vec::as_slice)
    }

    /// Types that have a dictionary.
    #[must_use]
    pub fn covered_types(&self) -> Vec<TypeId> {
        let mut v: Vec<TypeId> = self.entries.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Per-type fraction of `values` found in that type's dictionary,
    /// sorted descending (ties broken by id for determinism).
    ///
    /// A value that misses as a whole still counts for a type when *all*
    /// of its word tokens hit that type — this recovers composite values
    /// such as full names ("Han Phi") from token dictionaries.
    #[must_use]
    pub fn coverage<S: AsRef<str>>(&self, values: &[S]) -> Vec<(TypeId, f64)> {
        if values.is_empty() {
            return Vec::new();
        }
        let mut counts: HashMap<TypeId, usize> = HashMap::new();
        for v in values {
            let v = v.as_ref();
            let whole = self.types_for_value(v);
            if !whole.is_empty() {
                for &t in whole {
                    *counts.entry(t).or_insert(0) += 1;
                }
                continue;
            }
            // Token fallback.
            let tokens = tu_text::word_tokens(v);
            if tokens.len() < 2 {
                continue;
            }
            let mut candidate: Option<Vec<TypeId>> = None;
            for tok in &tokens {
                let hits = self.types_for_value(tok);
                if hits.is_empty() {
                    candidate = None;
                    break;
                }
                candidate = Some(match candidate {
                    None => hits.to_vec(),
                    Some(prev) => prev.into_iter().filter(|t| hits.contains(t)).collect(),
                });
                if candidate.as_ref().is_some_and(Vec::is_empty) {
                    candidate = None;
                    break;
                }
            }
            if let Some(types) = candidate {
                for t in types {
                    *counts.entry(t).or_insert(0) += 1;
                }
            }
        }
        let n = values.len() as f64;
        let mut out: Vec<(TypeId, f64)> =
            counts.into_iter().map(|(t, c)| (t, c as f64 / n)).collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tu_ontology::builtin_ontology;

    fn kb() -> (Ontology, KnowledgeBase) {
        let o = builtin_ontology();
        let kb = KnowledgeBase::builtin(&o);
        (o, kb)
    }

    #[test]
    fn exact_lookup_normalizes() {
        let (o, kb) = kb();
        let city = builtin_id(&o, "city");
        assert!(kb.contains(city, "Amsterdam"));
        assert!(kb.contains(city, "  AMSTERDAM "));
        assert!(kb.contains(city, "new york"));
        assert!(!kb.contains(city, "Gotham"));
    }

    #[test]
    fn ambiguous_values_hit_multiple_types() {
        let (o, kb) = kb();
        // "James" is both a first name and a last name (and thus a name).
        let types = kb.types_for_value("James");
        assert!(types.contains(&builtin_id(&o, "first name")));
        assert!(types.contains(&builtin_id(&o, "last name")));
        assert!(types.contains(&builtin_id(&o, "name")));
    }

    #[test]
    fn coverage_fractions() {
        let (o, kb) = kb();
        let city = builtin_id(&o, "city");
        let vals = ["Amsterdam", "Paris", "Nowhereville", "Tokyo"];
        let cov = kb.coverage(&vals);
        let (top, frac) = cov[0];
        assert_eq!(top, city);
        assert!((frac - 0.75).abs() < 1e-12);
        assert!(kb.coverage::<&str>(&[]).is_empty());
    }

    #[test]
    fn full_names_recovered_via_tokens() {
        let (o, kb) = kb();
        let name = builtin_id(&o, "name");
        let vals = ["James Smith", "Mary Johnson", "Robert Brown"];
        let cov = kb.coverage(&vals);
        let name_frac = cov
            .iter()
            .find(|(t, _)| *t == name)
            .map(|(_, f)| *f)
            .unwrap_or(0.0);
        assert!(
            (name_frac - 1.0).abs() < 1e-12,
            "full names should hit the name dictionary via tokens: {cov:?}"
        );
        // But a mixed-type token pair does not match.
        assert!(kb
            .coverage(&["James Amsterdam"])
            .iter()
            .all(|(t, _)| *t != name));
    }

    #[test]
    fn custom_entries() {
        let (o, mut kb) = kb();
        let product = builtin_id(&o, "product");
        kb.add_entries(product, &["Flux Capacitor"]);
        assert!(kb.contains(product, "flux capacitor"));
        assert!(kb
            .dictionary(product)
            .unwrap()
            .contains(&"Flux Capacitor".to_string()));
        // Re-adding is idempotent in the index.
        kb.add_entries(product, &["Flux Capacitor"]);
        assert_eq!(
            kb.types_for_value("flux capacitor")
                .iter()
                .filter(|t| **t == product)
                .count(),
            1
        );
    }

    #[test]
    fn covered_types_listing() {
        let (o, kb) = kb();
        let covered = kb.covered_types();
        assert!(covered.contains(&builtin_id(&o, "city")));
        assert!(covered.len() >= 20);
        // sorted
        assert!(covered.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_and_blank_entries_skipped() {
        let (o, mut kb) = kb();
        let team = builtin_id(&o, "team");
        kb.add_entries(team, &["", "   "]);
        assert!(kb.types_for_value("").is_empty());
    }
}
