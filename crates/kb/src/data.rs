//! Entity dictionaries.
//!
//! The reproduction's stand-in for the DBpedia Knowledge Base: per-type
//! value lists used (a) by the pipeline's value-lookup step and (b) as the
//! vocabulary of the synthetic corpus generator, so generated data and
//! lookup coverage share one source of truth.

/// Common first names.
pub const FIRST_NAMES: &[&str] = &[
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael", "Linda", "David",
    "Elizabeth", "William", "Barbara", "Richard", "Susan", "Joseph", "Jessica", "Thomas",
    "Sarah", "Charles", "Karen", "Christopher", "Lisa", "Daniel", "Nancy", "Matthew", "Betty",
    "Anthony", "Margaret", "Mark", "Sandra", "Donald", "Ashley", "Steven", "Kimberly", "Paul",
    "Emily", "Andrew", "Donna", "Joshua", "Michelle", "Kenneth", "Carol", "Kevin", "Amanda",
    "Brian", "Dorothy", "George", "Melissa", "Timothy", "Deborah", "Ronald", "Stephanie",
    "Edward", "Rebecca", "Jason", "Sharon", "Jeffrey", "Laura", "Ryan", "Cynthia", "Jacob",
    "Kathleen", "Gary", "Amy", "Nicholas", "Angela", "Eric", "Shirley", "Jonathan", "Anna",
    "Stephen", "Brenda", "Larry", "Pamela", "Justin", "Emma", "Scott", "Nicole", "Brandon",
    "Helen", "Benjamin", "Samantha", "Samuel", "Katherine", "Gregory", "Christine", "Alexander",
    "Debra", "Patrick", "Rachel", "Frank", "Carolyn", "Raymond", "Janet", "Jack", "Catherine",
    "Dennis", "Maria", "Jerry", "Heather", "Tyler", "Diane", "Aaron", "Ruth", "Jose", "Julie",
    "Adam", "Olivia", "Nathan", "Joyce", "Henry", "Virginia", "Douglas", "Victoria", "Zachary",
    "Kelly", "Peter", "Lauren", "Kyle", "Christina", "Ethan", "Joan", "Walter", "Evelyn",
];

/// Common last names.
pub const LAST_NAMES: &[&str] = &[
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis", "Rodriguez",
    "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson", "Thomas", "Taylor",
    "Moore", "Jackson", "Martin", "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez",
    "Clark", "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King", "Wright",
    "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green", "Adams", "Nelson", "Baker", "Hall",
    "Rivera", "Campbell", "Mitchell", "Carter", "Roberts", "Gomez", "Phillips", "Evans",
    "Turner", "Diaz", "Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris",
    "Morales", "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan", "Cooper", "Peterson",
    "Bailey", "Reed", "Kelly", "Howard", "Ramos", "Kim", "Cox", "Ward", "Richardson", "Watson",
    "Brooks", "Chavez", "Wood", "James", "Bennett", "Gray", "Mendoza", "Ruiz", "Hughes",
    "Price", "Alvarez", "Castillo", "Sanders", "Patel", "Myers", "Long", "Ross", "Foster",
    "Jimenez", "Powell", "Jenkins", "Perry", "Russell", "Sullivan", "Bell", "Coleman", "Butler",
    "Henderson", "Barnes", "Gonzales", "Fisher", "Vasquez", "Simmons", "Romero", "Jordan",
];

/// Major world cities.
pub const CITIES: &[&str] = &[
    "New York", "Los Angeles", "Chicago", "Houston", "Phoenix", "Philadelphia", "San Antonio",
    "San Diego", "Dallas", "San Jose", "Austin", "Jacksonville", "San Francisco", "Columbus",
    "Seattle", "Denver", "Boston", "Nashville", "Detroit", "Portland", "Las Vegas", "Memphis",
    "Baltimore", "Milwaukee", "Atlanta", "Miami", "Oakland", "Minneapolis", "Tulsa", "Cleveland",
    "London", "Paris", "Berlin", "Madrid", "Rome", "Amsterdam", "Vienna", "Brussels", "Lisbon",
    "Dublin", "Copenhagen", "Stockholm", "Oslo", "Helsinki", "Warsaw", "Prague", "Budapest",
    "Athens", "Zurich", "Geneva", "Munich", "Hamburg", "Frankfurt", "Barcelona", "Milan",
    "Naples", "Rotterdam", "Antwerp", "Porto", "Krakow", "Tokyo", "Osaka", "Kyoto", "Seoul",
    "Beijing", "Shanghai", "Shenzhen", "Hong Kong", "Singapore", "Bangkok", "Jakarta", "Manila",
    "Mumbai", "Delhi", "Bangalore", "Chennai", "Karachi", "Dhaka", "Istanbul", "Dubai",
    "Tel Aviv", "Cairo", "Lagos", "Nairobi", "Johannesburg", "Cape Town", "Casablanca", "Accra",
    "Sydney", "Melbourne", "Brisbane", "Perth", "Auckland", "Wellington", "Toronto", "Montreal",
    "Vancouver", "Calgary", "Ottawa", "Mexico City", "Guadalajara", "Monterrey", "Bogota",
    "Lima", "Santiago", "Buenos Aires", "Sao Paulo", "Rio de Janeiro", "Brasilia", "Caracas",
    "Quito", "Montevideo", "Havana", "Kingston", "San Juan", "Panama City", "Moscow",
    "Saint Petersburg", "Kyiv", "Bucharest", "Sofia", "Belgrade", "Zagreb", "Ljubljana",
];

/// Countries of the world (common English short names).
pub const COUNTRIES: &[&str] = &[
    "United States", "Canada", "Mexico", "Brazil", "Argentina", "Chile", "Colombia", "Peru",
    "Venezuela", "Ecuador", "Uruguay", "Paraguay", "Bolivia", "United Kingdom", "Ireland",
    "France", "Germany", "Spain", "Portugal", "Italy", "Netherlands", "Belgium", "Luxembourg",
    "Switzerland", "Austria", "Denmark", "Sweden", "Norway", "Finland", "Iceland", "Poland",
    "Czechia", "Slovakia", "Hungary", "Romania", "Bulgaria", "Greece", "Croatia", "Slovenia",
    "Serbia", "Ukraine", "Russia", "Turkey", "Israel", "Saudi Arabia", "United Arab Emirates",
    "Qatar", "Kuwait", "Egypt", "Morocco", "Algeria", "Tunisia", "Nigeria", "Ghana", "Kenya",
    "Ethiopia", "Tanzania", "South Africa", "India", "Pakistan", "Bangladesh", "Sri Lanka",
    "Nepal", "China", "Japan", "South Korea", "Taiwan", "Vietnam", "Thailand", "Malaysia",
    "Singapore", "Indonesia", "Philippines", "Australia", "New Zealand", "Fiji", "Estonia",
    "Latvia", "Lithuania", "Belarus", "Moldova", "Georgia", "Armenia", "Azerbaijan",
    "Kazakhstan", "Uzbekistan", "Mongolia", "Myanmar", "Cambodia", "Laos", "Jordan", "Lebanon",
    "Iraq", "Iran", "Afghanistan", "Cuba", "Jamaica", "Haiti", "Dominican Republic", "Panama",
    "Costa Rica", "Nicaragua", "Honduras", "Guatemala", "El Salvador", "Belize",
];

/// ISO 3166-1 alpha-2 country codes.
pub const COUNTRY_CODES: &[&str] = &[
    "US", "CA", "MX", "BR", "AR", "CL", "CO", "PE", "VE", "EC", "UY", "PY", "BO", "GB", "IE",
    "FR", "DE", "ES", "PT", "IT", "NL", "BE", "LU", "CH", "AT", "DK", "SE", "NO", "FI", "IS",
    "PL", "CZ", "SK", "HU", "RO", "BG", "GR", "HR", "SI", "RS", "UA", "RU", "TR", "IL", "SA",
    "AE", "QA", "KW", "EG", "MA", "DZ", "TN", "NG", "GH", "KE", "ET", "TZ", "ZA", "IN", "PK",
    "BD", "LK", "NP", "CN", "JP", "KR", "TW", "VN", "TH", "MY", "SG", "ID", "PH", "AU", "NZ",
];

/// US states.
pub const US_STATES: &[&str] = &[
    "Alabama", "Alaska", "Arizona", "Arkansas", "California", "Colorado", "Connecticut",
    "Delaware", "Florida", "Georgia", "Hawaii", "Idaho", "Illinois", "Indiana", "Iowa",
    "Kansas", "Kentucky", "Louisiana", "Maine", "Maryland", "Massachusetts", "Michigan",
    "Minnesota", "Mississippi", "Missouri", "Montana", "Nebraska", "Nevada", "New Hampshire",
    "New Jersey", "New Mexico", "New York", "North Carolina", "North Dakota", "Ohio",
    "Oklahoma", "Oregon", "Pennsylvania", "Rhode Island", "South Carolina", "South Dakota",
    "Tennessee", "Texas", "Utah", "Vermont", "Virginia", "Washington", "West Virginia",
    "Wisconsin", "Wyoming",
];

/// Company names (fictional but plausible, plus well-known shapes).
pub const COMPANIES: &[&str] = &[
    "Acme Corp", "Globex", "Initech", "Umbrella Corp", "Stark Industries", "Wayne Enterprises",
    "Wonka Industries", "Cyberdyne Systems", "Tyrell Corp", "Aperture Science", "Hooli",
    "Pied Piper", "Dunder Mifflin", "Sterling Cooper", "Bluth Company", "Vandelay Industries",
    "Oscorp", "LexCorp", "Massive Dynamic", "Veridian Dynamics", "Soylent Corp", "Weyland",
    "Nakatomi Trading", "Gringotts", "Monsters Inc", "Prestige Worldwide", "Gekko and Co",
    "Duff Brewing", "Krusty Krab", "Los Pollos Hermanos", "Sigma Computing", "Northwind",
    "Contoso", "Fabrikam", "Adventure Works", "Tailspin Toys", "Wingtip Toys", "Litware",
    "Proseware", "Lucerne Publishing", "Alpine Ski House", "Coho Winery", "Wide World Importers",
    "Fourth Coffee", "Graphic Design Institute", "Humongous Insurance", "Margie Travel",
    "Trey Research", "The Phone Company", "Blue Yonder Airlines", "City Power and Light",
    "Consolidated Messenger", "First Up Consultants", "Relecloud", "School of Fine Art",
    "Southridge Video", "Woodgrove Bank", "Bellows College", "Best For You Organics", "Lamna",
    "Munson Pickles", "Nod Publishers", "Olde Towne Hardware", "VanArsdel", "Adatum",
];

/// Product names.
pub const PRODUCTS: &[&str] = &[
    "Laptop Pro 15", "Desktop Tower X", "Wireless Mouse", "Mechanical Keyboard", "USB-C Hub",
    "HD Monitor 27", "Noise Cancelling Headphones", "Bluetooth Speaker", "Smartphone S22",
    "Tablet Air", "Smartwatch Fit", "Fitness Tracker", "External SSD 1TB", "Portable Charger",
    "Webcam 1080p", "Ergonomic Chair", "Standing Desk", "Desk Lamp LED", "Paper Shredder",
    "Label Printer", "Espresso Machine", "Coffee Grinder", "Electric Kettle", "Air Fryer",
    "Blender Max", "Toaster Oven", "Vacuum Robot", "Air Purifier", "Humidifier", "Space Heater",
    "Yoga Mat", "Dumbbell Set", "Running Shoes", "Trail Backpack", "Water Bottle", "Tent 4P",
    "Sleeping Bag", "Camping Stove", "Mountain Bike", "Road Helmet", "Garden Hose", "Leaf Blower",
    "Cordless Drill", "Screwdriver Set", "Tool Chest", "Work Gloves", "Safety Glasses",
    "Paint Roller", "Step Ladder", "Tape Measure",
];

/// Brand names.
pub const BRANDS: &[&str] = &[
    "Aurora", "Zenith", "Nimbus", "Vertex", "Pinnacle", "Summit", "Horizon", "Cascade",
    "Everest", "Atlas", "Orion", "Vega", "Polaris", "Nova", "Quasar", "Pulsar", "Comet",
    "Meteor", "Eclipse", "Solstice", "Equinox", "Zephyr", "Tempest", "Cyclone", "Typhoon",
    "Monsoon", "Sierra", "Rio", "Delta", "Fjord", "Tundra", "Savanna", "Oasis", "Mirage",
    "Redwood", "Sequoia", "Juniper", "Willow", "Maple", "Birch",
];

/// Languages.
pub const LANGUAGES: &[&str] = &[
    "English", "Spanish", "French", "German", "Italian", "Portuguese", "Dutch", "Swedish",
    "Norwegian", "Danish", "Finnish", "Polish", "Czech", "Slovak", "Hungarian", "Romanian",
    "Bulgarian", "Greek", "Turkish", "Russian", "Ukrainian", "Arabic", "Hebrew", "Persian",
    "Hindi", "Bengali", "Urdu", "Tamil", "Telugu", "Mandarin", "Cantonese", "Japanese",
    "Korean", "Vietnamese", "Thai", "Indonesian", "Malay", "Tagalog", "Swahili", "Amharic",
];

/// Currency names.
pub const CURRENCIES: &[&str] = &[
    "US Dollar", "Euro", "British Pound", "Japanese Yen", "Swiss Franc", "Canadian Dollar",
    "Australian Dollar", "Chinese Yuan", "Indian Rupee", "Brazilian Real", "Mexican Peso",
    "South Korean Won", "Turkish Lira", "Russian Ruble", "South African Rand", "Swedish Krona",
    "Norwegian Krone", "Danish Krone", "Polish Zloty", "Singapore Dollar",
];

/// ISO 4217 currency codes.
pub const CURRENCY_CODES: &[&str] = &[
    "USD", "EUR", "GBP", "JPY", "CHF", "CAD", "AUD", "CNY", "INR", "BRL", "MXN", "KRW", "TRY",
    "RUB", "ZAR", "SEK", "NOK", "DKK", "PLN", "SGD", "HKD", "NZD", "THB", "IDR", "MYR",
];

/// Month names.
pub const MONTHS: &[&str] = &[
    "January", "February", "March", "April", "May", "June", "July", "August", "September",
    "October", "November", "December",
];

/// Weekday names.
pub const WEEKDAYS: &[&str] = &[
    "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday",
];

/// Blood types.
pub const BLOOD_TYPES: &[&str] = &["A+", "A-", "B+", "B-", "AB+", "AB-", "O+", "O-"];

/// Continents.
pub const CONTINENTS: &[&str] = &[
    "Africa", "Antarctica", "Asia", "Europe", "North America", "Oceania", "South America",
];

/// Job titles.
pub const JOB_TITLES: &[&str] = &[
    "Software Engineer", "Data Scientist", "Product Manager", "Account Executive",
    "Sales Manager", "Marketing Director", "HR Specialist", "Financial Analyst", "Accountant",
    "Operations Manager", "Customer Success Manager", "Support Engineer", "DevOps Engineer",
    "Security Analyst", "Research Scientist", "UX Designer", "Graphic Designer",
    "Technical Writer", "QA Engineer", "Business Analyst", "Project Manager", "Consultant",
    "Attorney", "Paralegal", "Nurse", "Physician", "Pharmacist", "Teacher", "Professor",
    "Librarian", "Architect", "Civil Engineer", "Mechanical Engineer", "Electrician",
    "Plumber", "Carpenter", "Chef", "Bartender", "Barista", "Cashier", "Store Manager",
    "Warehouse Associate", "Truck Driver", "Pilot", "Flight Attendant", "Receptionist",
    "Office Manager", "Executive Assistant", "Chief Executive Officer", "Chief Financial Officer",
];

/// Color names paired with hex codes (names only where a name is needed).
pub const COLOR_NAMES: &[&str] = &[
    "Red", "Green", "Blue", "Yellow", "Orange", "Purple", "Pink", "Brown", "Black", "White",
    "Gray", "Cyan", "Magenta", "Lime", "Teal", "Indigo", "Violet", "Gold", "Silver", "Beige",
    "Coral", "Crimson", "Khaki", "Lavender", "Maroon", "Navy", "Olive", "Salmon", "Turquoise",
];

/// Payment methods.
pub const PAYMENT_METHODS: &[&str] = &[
    "Credit Card", "Debit Card", "PayPal", "Bank Transfer", "Wire Transfer", "Cash", "Check",
    "Apple Pay", "Google Pay", "Gift Card", "Invoice", "Direct Debit",
];

/// Order/status lifecycle values.
pub const STATUSES: &[&str] = &[
    "pending", "processing", "shipped", "delivered", "cancelled", "returned", "refunded",
    "on hold", "completed", "failed", "active", "inactive", "draft", "archived", "open",
    "closed", "approved", "rejected", "in review", "new",
];

/// Gender values as they appear in real tables.
pub const GENDERS: &[&str] = &["Male", "Female", "Non-binary", "M", "F", "Other"];

/// File extensions.
pub const FILE_EXTENSIONS: &[&str] = &[
    "csv", "json", "xml", "txt", "pdf", "doc", "docx", "xls", "xlsx", "ppt", "pptx", "png",
    "jpg", "jpeg", "gif", "svg", "mp3", "mp4", "avi", "zip", "tar", "gz", "parquet", "avro",
];

/// MIME types.
pub const MIME_TYPES: &[&str] = &[
    "text/csv", "application/json", "application/xml", "text/plain", "application/pdf",
    "image/png", "image/jpeg", "image/gif", "image/svg+xml", "audio/mpeg", "video/mp4",
    "application/zip", "application/octet-stream", "text/html", "text/css",
];

/// Sports teams (fictional-ish).
pub const TEAMS: &[&str] = &[
    "Falcons", "Tigers", "Eagles", "Bears", "Lions", "Wolves", "Sharks", "Panthers", "Hawks",
    "Raptors", "Knights", "Titans", "Giants", "Rangers", "Mariners", "Pilots", "Comets",
    "Rockets", "Chargers", "Thunder", "Storm", "Blaze", "Fury", "Vipers",
];

/// Schools and universities (fictional-ish).
pub const SCHOOLS: &[&str] = &[
    "Northfield University", "Lakeside College", "Riverside High School", "Oakmont Academy",
    "Hillcrest University", "Maplewood College", "Brookstone Institute", "Cedar Valley High",
    "Pinehurst University", "Silver Lake College", "Granite State University", "Bayview Academy",
    "Summit Ridge College", "Clearwater University", "Elmwood Institute", "Fairview College",
    "Harborview University", "Ironwood Academy", "Juniper Hills College", "Kingsbridge School",
];

/// Letter grades.
pub const GRADES: &[&str] = &["A+", "A", "A-", "B+", "B", "B-", "C+", "C", "C-", "D", "F"];

/// Street-name components for address generation.
pub const STREET_NAMES: &[&str] = &[
    "Main", "Oak", "Pine", "Maple", "Cedar", "Elm", "Washington", "Lake", "Hill", "Park",
    "Walnut", "Spring", "North", "Ridge", "Church", "Willow", "Mill", "Sunset", "Railroad",
    "Jackson", "Highland", "Forest", "River", "Meadow", "Broad", "Market", "Union", "Franklin",
];

/// Street suffixes.
pub const STREET_SUFFIXES: &[&str] = &[
    "St", "Ave", "Blvd", "Dr", "Ln", "Rd", "Way", "Ct", "Pl", "Ter",
];

/// Email domains.
pub const EMAIL_DOMAINS: &[&str] = &[
    "gmail.com", "yahoo.com", "outlook.com", "hotmail.com", "icloud.com", "proton.me",
    "example.com", "company.com", "mail.org", "inbox.net",
];

/// Top-level domains for URL generation.
pub const TLDS: &[&str] = &["com", "org", "net", "io", "dev", "app", "ai", "co"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionaries_are_sizable() {
        assert!(FIRST_NAMES.len() >= 100);
        assert!(LAST_NAMES.len() >= 100);
        assert!(CITIES.len() >= 100);
        assert!(COUNTRIES.len() >= 90);
        assert!(JOB_TITLES.len() >= 40);
        assert_eq!(US_STATES.len(), 50);
        assert_eq!(MONTHS.len(), 12);
        assert_eq!(WEEKDAYS.len(), 7);
        assert_eq!(BLOOD_TYPES.len(), 8);
    }

    #[test]
    fn no_duplicates_within_a_dictionary() {
        fn check(name: &str, list: &[&str]) {
            let mut set = std::collections::HashSet::new();
            for v in list {
                assert!(set.insert(v.to_lowercase()), "duplicate {v:?} in {name}");
            }
        }
        check("FIRST_NAMES", FIRST_NAMES);
        check("LAST_NAMES", LAST_NAMES);
        check("CITIES", CITIES);
        check("COUNTRIES", COUNTRIES);
        check("COUNTRY_CODES", COUNTRY_CODES);
        check("COMPANIES", COMPANIES);
        check("LANGUAGES", LANGUAGES);
        check("CURRENCY_CODES", CURRENCY_CODES);
        check("JOB_TITLES", JOB_TITLES);
        check("STATUSES", STATUSES);
    }

    #[test]
    fn no_empty_entries() {
        for list in [FIRST_NAMES, CITIES, COUNTRIES, COMPANIES, PRODUCTS] {
            assert!(list.iter().all(|v| !v.trim().is_empty()));
        }
    }
}
