//! Property tests: knowledge-base lookup consistency.

use proptest::prelude::*;
use tu_kb::KnowledgeBase;
use tu_ontology::builtin_ontology;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn coverage_fractions_bounded(values in prop::collection::vec("\\PC{0,14}", 0..30)) {
        let o = builtin_ontology();
        let kb = KnowledgeBase::builtin(&o);
        for (ty, frac) in kb.coverage(&values) {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&frac), "{ty:?} {frac}");
            prop_assert!(!ty.is_unknown());
        }
    }

    #[test]
    fn contains_agrees_with_types_for_value(v in "\\PC{0,14}") {
        let o = builtin_ontology();
        let kb = KnowledgeBase::builtin(&o);
        for &ty in kb.types_for_value(&v) {
            prop_assert!(kb.contains(ty, &v));
        }
    }

    #[test]
    fn every_dictionary_entry_is_found(idx in 0usize..1000) {
        let o = builtin_ontology();
        let kb = KnowledgeBase::builtin(&o);
        let covered = kb.covered_types();
        let ty = covered[idx % covered.len()];
        let dict = kb.dictionary(ty).unwrap();
        if !dict.is_empty() {
            let entry = &dict[idx % dict.len()];
            prop_assert!(kb.contains(ty, entry), "{ty:?} should contain {entry:?}");
        }
    }
}
